//! A [`dps_core::graph::Network`] embedded in the plane: every node has a
//! position, every link a geometric length.

use crate::geom::Point;
use crate::params::SinrParams;
use dps_core::graph::{Network, NetworkBuilder};
use dps_core::ids::{LinkId, NodeId};

/// A network with node positions and SINR parameters.
///
/// Built with [`SinrNetworkBuilder`] or one of the generators in
/// [`crate::instances`].
///
/// Construction caches per-link geometry — endpoint positions and link
/// lengths — so [`SinrNetwork::link_length`] is a table lookup and
/// [`SinrNetwork::cross_distance`] needs no node indirection. Everything
/// downstream (affectance, matrices, the exact oracle) leans on these
/// caches; see [`crate::cache::SinrCache`] for the power-dependent layer.
#[derive(Clone, Debug)]
pub struct SinrNetwork {
    network: Network,
    positions: Vec<Point>,
    params: SinrParams,
    /// Per-link sender position (`positions` of the link's `src` node).
    link_sender: Vec<Point>,
    /// Per-link receiver position (`positions` of the link's `dst` node).
    link_receiver: Vec<Point>,
    /// Per-link geometric length `d(ℓ)`.
    lengths: Vec<f64>,
}

impl SinrNetwork {
    /// The underlying topological network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The SINR parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.network.num_links()
    }

    /// The significant size `m = max{|E|, D}`.
    pub fn significant_size(&self) -> usize {
        self.network.significant_size()
    }

    /// Position of `node`.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// Position of the sender of `link`.
    pub fn sender_pos(&self, link: LinkId) -> Point {
        self.link_sender[link.index()]
    }

    /// Position of the receiver of `link`.
    pub fn receiver_pos(&self, link: LinkId) -> Point {
        self.link_receiver[link.index()]
    }

    /// All sender positions, indexed by [`LinkId::index`] — the
    /// contiguous view bulk consumers ([`crate::cache::SinrCache`]
    /// construction) iterate instead of per-link lookups.
    pub fn link_senders(&self) -> &[Point] {
        &self.link_sender
    }

    /// All receiver positions, indexed by [`LinkId::index`].
    pub fn link_receivers(&self) -> &[Point] {
        &self.link_receiver
    }

    /// Geometric length `d(ℓ)` of `link` (cached at construction).
    pub fn link_length(&self, link: LinkId) -> f64 {
        self.lengths[link.index()]
    }

    /// All link lengths, indexed by [`LinkId::index`].
    pub fn lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// Distance from the sender of `from` to the receiver of `to` — the
    /// `d(s', r)` term of the SINR condition.
    pub fn cross_distance(&self, from: LinkId, to: LinkId) -> f64 {
        self.link_sender[from.index()].distance(&self.link_receiver[to.index()])
    }

    /// Ratio `Δ` between the longest and shortest link lengths.
    pub fn length_diversity(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for &len in &self.lengths {
            min = min.min(len);
            max = max.max(len);
        }
        if min <= 0.0 || !min.is_finite() {
            return f64::INFINITY;
        }
        max / min
    }
}

/// Builder for a [`SinrNetwork`].
///
/// ```
/// use dps_sinr::network::SinrNetworkBuilder;
/// use dps_sinr::params::SinrParams;
///
/// let mut b = SinrNetworkBuilder::new(SinrParams::default());
/// let u = b.add_node((0.0, 0.0));
/// let v = b.add_node((1.0, 0.0));
/// let e = b.add_link(u, v);
/// let net = b.build();
/// assert_eq!(net.link_length(e), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct SinrNetworkBuilder {
    builder: NetworkBuilder,
    positions: Vec<Point>,
    params: SinrParams,
}

impl SinrNetworkBuilder {
    /// Creates an empty builder with the given parameters.
    pub fn new(params: SinrParams) -> Self {
        SinrNetworkBuilder {
            builder: NetworkBuilder::new(),
            positions: Vec::new(),
            params,
        }
    }

    /// Adds a node at `position`.
    pub fn add_node(&mut self, position: impl Into<Point>) -> NodeId {
        self.positions.push(position.into());
        self.builder.add_node()
    }

    /// Adds a directed link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint has not been added, or if the endpoints
    /// coincide (zero-length links have undefined path loss).
    pub fn add_link(&mut self, src: NodeId, dst: NodeId) -> LinkId {
        assert!(
            self.positions[src.index()].distance(&self.positions[dst.index()]) > 0.0,
            "link endpoints must be distinct points"
        );
        self.builder.add_link(src, dst)
    }

    /// Adds a standalone link between two fresh nodes at the given
    /// positions; convenient for single-hop instances.
    pub fn add_isolated_link(
        &mut self,
        sender: impl Into<Point>,
        receiver: impl Into<Point>,
    ) -> LinkId {
        let s = self.add_node(sender);
        let r = self.add_node(receiver);
        self.add_link(s, r)
    }

    /// Declares the maximum route length `D`.
    pub fn max_path_len(&mut self, d: usize) -> &mut Self {
        self.builder.max_path_len(d);
        self
    }

    /// Finalizes the network, caching per-link endpoint positions and
    /// lengths.
    pub fn build(&self) -> SinrNetwork {
        let network = self.builder.build();
        let mut link_sender = Vec::with_capacity(network.num_links());
        let mut link_receiver = Vec::with_capacity(network.num_links());
        let mut lengths = Vec::with_capacity(network.num_links());
        for link in network.link_ids() {
            let spec = network.link(link);
            let s = self.positions[spec.src.index()];
            let r = self.positions[spec.dst.index()];
            link_sender.push(s);
            link_receiver.push(r);
            lengths.push(s.distance(&r));
        }
        SinrNetwork {
            network,
            positions: self.positions.clone(),
            params: self.params,
            link_sender,
            link_receiver,
            lengths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_cross_distances() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        let e0 = b.add_isolated_link((0.0, 0.0), (1.0, 0.0));
        let e1 = b.add_isolated_link((0.0, 3.0), (4.0, 0.0));
        let net = b.build();
        assert_eq!(net.link_length(e0), 1.0);
        assert_eq!(net.link_length(e1), 5.0);
        // Sender of e0 at origin, receiver of e1 at (4, 0): distance 4.
        assert_eq!(net.cross_distance(e0, e1), 4.0);
        // Sender of e1 at (0, 3), receiver of e0 at (1, 0).
        assert!((net.cross_distance(e1, e0) - 10f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn length_diversity_is_max_over_min() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        b.add_isolated_link((0.0, 0.0), (1.0, 0.0));
        b.add_isolated_link((10.0, 0.0), (18.0, 0.0));
        let net = b.build();
        assert_eq!(net.length_diversity(), 8.0);
    }

    #[test]
    #[should_panic(expected = "distinct points")]
    fn rejects_zero_length_link() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        let u = b.add_node((1.0, 1.0));
        let v = b.add_node((1.0, 1.0));
        b.add_link(u, v);
    }

    #[test]
    fn multi_hop_chain_shares_nodes() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        let n0 = b.add_node((0.0, 0.0));
        let n1 = b.add_node((1.0, 0.0));
        let n2 = b.add_node((2.0, 0.0));
        let e0 = b.add_link(n0, n1);
        let e1 = b.add_link(n1, n2);
        let net = b.build();
        assert!(net.network().adjacent(e0, e1));
    }
}
