//! A [`dps_core::graph::Network`] embedded in the plane: every node has a
//! position, every link a geometric length.

use crate::geom::Point;
use crate::params::SinrParams;
use dps_core::graph::{Network, NetworkBuilder};
use dps_core::ids::{LinkId, NodeId};

/// A network with node positions and SINR parameters.
///
/// Built with [`SinrNetworkBuilder`] or one of the generators in
/// [`crate::instances`].
#[derive(Clone, Debug)]
pub struct SinrNetwork {
    network: Network,
    positions: Vec<Point>,
    params: SinrParams,
}

impl SinrNetwork {
    /// The underlying topological network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The SINR parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.network.num_links()
    }

    /// The significant size `m = max{|E|, D}`.
    pub fn significant_size(&self) -> usize {
        self.network.significant_size()
    }

    /// Position of `node`.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// Position of the sender of `link`.
    pub fn sender_pos(&self, link: LinkId) -> Point {
        self.position(self.network.link(link).src)
    }

    /// Position of the receiver of `link`.
    pub fn receiver_pos(&self, link: LinkId) -> Point {
        self.position(self.network.link(link).dst)
    }

    /// Geometric length `d(ℓ)` of `link`.
    pub fn link_length(&self, link: LinkId) -> f64 {
        self.sender_pos(link).distance(&self.receiver_pos(link))
    }

    /// Distance from the sender of `from` to the receiver of `to` — the
    /// `d(s', r)` term of the SINR condition.
    pub fn cross_distance(&self, from: LinkId, to: LinkId) -> f64 {
        self.sender_pos(from).distance(&self.receiver_pos(to))
    }

    /// Ratio `Δ` between the longest and shortest link lengths.
    pub fn length_diversity(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for link in self.network.link_ids() {
            let len = self.link_length(link);
            min = min.min(len);
            max = max.max(len);
        }
        if min <= 0.0 || !min.is_finite() {
            return f64::INFINITY;
        }
        max / min
    }
}

/// Builder for a [`SinrNetwork`].
///
/// ```
/// use dps_sinr::network::SinrNetworkBuilder;
/// use dps_sinr::params::SinrParams;
///
/// let mut b = SinrNetworkBuilder::new(SinrParams::default());
/// let u = b.add_node((0.0, 0.0));
/// let v = b.add_node((1.0, 0.0));
/// let e = b.add_link(u, v);
/// let net = b.build();
/// assert_eq!(net.link_length(e), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct SinrNetworkBuilder {
    builder: NetworkBuilder,
    positions: Vec<Point>,
    params: SinrParams,
}

impl SinrNetworkBuilder {
    /// Creates an empty builder with the given parameters.
    pub fn new(params: SinrParams) -> Self {
        SinrNetworkBuilder {
            builder: NetworkBuilder::new(),
            positions: Vec::new(),
            params,
        }
    }

    /// Adds a node at `position`.
    pub fn add_node(&mut self, position: impl Into<Point>) -> NodeId {
        self.positions.push(position.into());
        self.builder.add_node()
    }

    /// Adds a directed link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint has not been added, or if the endpoints
    /// coincide (zero-length links have undefined path loss).
    pub fn add_link(&mut self, src: NodeId, dst: NodeId) -> LinkId {
        assert!(
            self.positions[src.index()].distance(&self.positions[dst.index()]) > 0.0,
            "link endpoints must be distinct points"
        );
        self.builder.add_link(src, dst)
    }

    /// Adds a standalone link between two fresh nodes at the given
    /// positions; convenient for single-hop instances.
    pub fn add_isolated_link(
        &mut self,
        sender: impl Into<Point>,
        receiver: impl Into<Point>,
    ) -> LinkId {
        let s = self.add_node(sender);
        let r = self.add_node(receiver);
        self.add_link(s, r)
    }

    /// Declares the maximum route length `D`.
    pub fn max_path_len(&mut self, d: usize) -> &mut Self {
        self.builder.max_path_len(d);
        self
    }

    /// Finalizes the network.
    pub fn build(&self) -> SinrNetwork {
        SinrNetwork {
            network: self.builder.build(),
            positions: self.positions.clone(),
            params: self.params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_cross_distances() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        let e0 = b.add_isolated_link((0.0, 0.0), (1.0, 0.0));
        let e1 = b.add_isolated_link((0.0, 3.0), (4.0, 0.0));
        let net = b.build();
        assert_eq!(net.link_length(e0), 1.0);
        assert_eq!(net.link_length(e1), 5.0);
        // Sender of e0 at origin, receiver of e1 at (4, 0): distance 4.
        assert_eq!(net.cross_distance(e0, e1), 4.0);
        // Sender of e1 at (0, 3), receiver of e0 at (1, 0).
        assert!((net.cross_distance(e1, e0) - 10f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn length_diversity_is_max_over_min() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        b.add_isolated_link((0.0, 0.0), (1.0, 0.0));
        b.add_isolated_link((10.0, 0.0), (18.0, 0.0));
        let net = b.build();
        assert_eq!(net.length_diversity(), 8.0);
    }

    #[test]
    #[should_panic(expected = "distinct points")]
    fn rejects_zero_length_link() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        let u = b.add_node((1.0, 1.0));
        let v = b.add_node((1.0, 1.0));
        b.add_link(u, v);
    }

    #[test]
    fn multi_hop_chain_shares_nodes() {
        let mut b = SinrNetworkBuilder::new(SinrParams::default());
        let n0 = b.add_node((0.0, 0.0));
        let n1 = b.add_node((1.0, 0.0));
        let n2 = b.add_node((2.0, 0.0));
        let e0 = b.add_link(n0, n1);
        let e1 = b.add_link(n1, n2);
        let net = b.build();
        assert!(net.network().adjacent(e0, e1));
    }
}
