//! Referee suite for the spatially-tiled SINR substrate: the tiled
//! oracle vs the exact one.
//!
//! The contract under test ([`dps_sinr::tiles`]):
//!
//! * `epsilon = 0` — bit-for-bit: verdicts and per-receiver
//!   interference sums identical to the exact oracle (and hence to
//!   `successes_naive`).
//! * `epsilon > 0` — bounded: per-receiver interference within
//!   `epsilon · margin` of the exact sum (for positive margins; a
//!   non-positive margin disqualifies its whole receiver tile from
//!   far-field aggregation, so those receivers stay bit-exact), and
//!   verdicts identical whenever the exact comparison sits outside the
//!   error band.
//! * Zero cross distances (shared nodes) poison both paths with `NaN`
//!   at any epsilon: coincident points share a tile and tiles only
//!   far-qualify at strictly positive centre separation.

use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::{LinkId, PacketId};
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::{line_instance, random_instance};
use dps_sinr::network::SinrNetwork;
use dps_sinr::params::SinrParams;
use dps_sinr::power::{LinearPower, PowerAssignment, UniformPower};
use dps_sinr::tiles::{PanelCacheMode, TileOptions, TiledSinrFeasibility};
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn attempt(link: u32, id: u64) -> Attempt {
    Attempt {
        link: LinkId(link),
        packet: PacketId(id),
    }
}

/// The epsilon lattice the ISSUE pins: exact, tight, loose.
const EPSILONS: [f64; 3] = [0.0, 1e-6, 1e-2];

/// Kernel thread counts the referee exercises; verdicts must be
/// bit-for-bit identical across all of them.
const THREADS: [usize; 3] = [1, 2, 4];

/// Distinct attempted links with multiplicities, ascending — the shared
/// preamble of both kernels, reproduced independently here.
fn dedup(attempts: &[Attempt]) -> Vec<(u32, u32)> {
    let mut active: Vec<(u32, u32)> = attempts.iter().map(|a| (a.link.0, 1)).collect();
    active.sort_unstable_by_key(|&(link, _)| link);
    let mut out: Vec<(u32, u32)> = Vec::new();
    for (link, count) in active {
        match out.last_mut() {
            Some(last) if last.0 == link => last.1 += count,
            _ => out.push((link, count)),
        }
    }
    out
}

/// Runs the full referee for one `(net, power, attempts, grid, eps)`
/// cell at one hierarchy depth and kernel thread count:
/// naive-vs-cached sanity, interference-sum pinning, and band-aware
/// verdict comparison.
fn referee_at<P: PowerAssignment + Clone>(
    net: &SinrNetwork,
    power: P,
    attempts: &[Attempt],
    grid: usize,
    eps: f64,
    levels: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let exact = SinrFeasibility::new(net.clone(), power.clone());
    let options = TileOptions::new(grid, eps).with_levels(levels);
    let tiled =
        TiledSinrFeasibility::with_options(net.clone(), power, options).kernel_threads(threads);
    let mut srng = ChaCha12Rng::seed_from_u64(7);
    let naive = exact.successes_naive(attempts, &mut srng.clone());
    let fast = exact.successes(attempts, &mut srng.clone());
    prop_assert_eq!(&fast, &naive, "exact oracle self-check diverged");
    let tiled_verdicts = tiled.successes(attempts, &mut srng);

    let cache = exact.cache();
    let beta = cache.beta();
    let noise = cache.noise();
    let active = dedup(attempts);
    let tiled_sums = tiled.slot_interference(attempts);
    prop_assert_eq!(tiled_sums.len(), active.len());

    // Exact per-receiver sums, recomputed in kernel order (ascending
    // link index, count-weighted) from the cache's gain expression.
    let mut exact_sums = Vec::with_capacity(active.len());
    for &(on_raw, _) in &active {
        let on = LinkId(on_raw);
        let mut sum = 0.0f64;
        for &(from_raw, count) in &active {
            if from_raw == on_raw {
                continue;
            }
            sum += count as f64 * cache.gain(LinkId(from_raw), on);
        }
        exact_sums.push(sum);
    }

    for (slot, &(on_raw, _)) in active.iter().enumerate() {
        let on = LinkId(on_raw);
        let (tiled_link, tiled_sum) = tiled_sums[slot];
        prop_assert_eq!(tiled_link, on);
        let exact_sum = exact_sums[slot];
        let margin = cache.margin(on);
        if eps == 0.0 || margin <= 0.0 || margin.is_nan() {
            // ε = 0 disables aggregation globally; a non-positive (or
            // NaN) margin disqualifies the receiver's tile. Either way
            // the sum must be the exact bits.
            prop_assert_eq!(
                exact_sum.to_bits(),
                tiled_sum.to_bits(),
                "link {} (eps {}, margin {}): {} vs {}",
                on,
                eps,
                margin,
                exact_sum,
                tiled_sum
            );
        } else if exact_sum.is_nan() {
            prop_assert!(
                tiled_sum.is_nan(),
                "link {}: NaN blockage lost by the tiled path",
                on
            );
        } else {
            // |I_tiled − I_exact| ≤ ε·margin, with a relative-rounding
            // slack for the far aggregate's reassociated additions.
            let slack = 1e-12 * exact_sum.abs().max(margin);
            prop_assert!(
                (tiled_sum - exact_sum).abs() <= eps * margin + slack,
                "link {}: |{} - {}| > {}·{}",
                on,
                tiled_sum,
                exact_sum,
                eps,
                margin
            );
        }
    }

    if eps == 0.0 {
        prop_assert_eq!(&tiled_verdicts, &naive, "ε = 0 verdicts diverged");
    } else {
        // Verdicts must agree whenever the exact comparison clears the
        // error band; inside the band either answer is within contract.
        for (j, a) in attempts.iter().enumerate() {
            let slot = active
                .binary_search_by_key(&a.link.0, |&(link, _)| link)
                .expect("attempted link is active");
            let (_, count) = active[slot];
            if count != 1 {
                prop_assert!(!naive[j] && !tiled_verdicts[j], "collisions fail both");
                continue;
            }
            let on = LinkId(a.link.0);
            let margin = cache.margin(on);
            let exact_sum = exact_sums[slot];
            if exact_sum.is_nan() {
                prop_assert!(!naive[j] && !tiled_verdicts[j], "NaN blocks both");
                continue;
            }
            let band = if margin > 0.0 {
                beta * (eps * margin + 2e-12 * exact_sum.abs().max(margin))
            } else {
                0.0
            };
            let gap = cache.signal(on) - beta * (exact_sum + noise);
            if gap.abs() > band {
                prop_assert_eq!(
                    tiled_verdicts[j],
                    naive[j],
                    "link {} flipped outside the ε-band (gap {}, band {})",
                    on,
                    gap,
                    band
                );
            }
        }
    }
    Ok(())
}

/// The flat single-threaded referee cell — the pre-hierarchy contract.
fn referee<P: PowerAssignment + Clone>(
    net: &SinrNetwork,
    power: P,
    attempts: &[Attempt],
    grid: usize,
    eps: f64,
) -> Result<(), TestCaseError> {
    referee_at(net, power, attempts, grid, eps, 1, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random geometry across the epsilon lattice, subsets with
    /// duplicate attempts mixed in, uniform and linear powers, with and
    /// without noise.
    #[test]
    fn tiled_oracle_respects_error_contract(
        seed in 0u64..500,
        subset_bits in 1u32..0xff_ffff,
        dup_a in 0u32..24,
        dup_b in 0u32..24,
        grid in 1usize..9,
        eps_sel in 0usize..3,
        noisy in 0u32..2,
        power_sel in 0u32..2,
        levels in 1usize..5,
        threads_sel in 0usize..3,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = if noisy == 1 {
            SinrParams::with_noise(1e-3)
        } else {
            SinrParams::default_noiseless()
        };
        let net = random_instance(24, 120.0, 0.8, 3.0, params, &mut rng);
        let mut attempts: Vec<Attempt> = (0..24u32)
            .filter(|i| subset_bits & (1 << i) != 0)
            .enumerate()
            .map(|(i, l)| attempt(l, i as u64))
            .collect();
        attempts.push(attempt(dup_a, 100));
        attempts.push(attempt(dup_b, 101));
        let eps = EPSILONS[eps_sel];
        let threads = THREADS[threads_sel];
        if power_sel == 0 {
            referee_at(&net, UniformPower::unit(), &attempts, grid, eps, levels, threads)?;
        } else {
            referee_at(&net, LinearPower::new(params.alpha), &attempts, grid, eps, levels, threads)?;
        }
    }

    /// Shared-node lines: zero cross distances at every grid resolution
    /// and epsilon — the NaN blockage rule must survive tiling, and
    /// ε = 0 stays bit-for-bit.
    #[test]
    fn tiled_oracle_preserves_zero_distance_blockage(
        hops in 2usize..20,
        spacing in 0.5f64..3.0,
        dup in 0u32..5,
        grid in 1usize..9,
        eps_sel in 0usize..3,
    ) {
        let net = line_instance(hops, spacing, SinrParams::default_noiseless());
        let mut attempts: Vec<Attempt> = (0..hops as u32)
            .map(|l| attempt(l, l as u64))
            .collect();
        attempts.push(attempt(dup % hops as u32, 99));
        referee_at(
            &net, UniformPower::unit(), &attempts, grid,
            EPSILONS[eps_sel], 1 + (hops % 3), THREADS[hops % 3])?;
    }

    /// Hierarchical coarsening vs the flat grid vs the naive oracle:
    /// ε = 0 is bit-for-bit at every depth and thread count, and every
    /// depth independently honours the ε-band contract. On top of the
    /// per-config referee, all configs must agree bitwise with the
    /// flat single-threaded sums at ε = 0.
    #[test]
    fn hierarchy_depth_and_threads_preserve_the_contract(
        seed in 0u64..200,
        grid in 4usize..17,
        eps_sel in 0usize..3,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::with_noise(1e-4);
        let net = random_instance(32, 200.0, 0.8, 3.0, params, &mut rng);
        let attempts: Vec<Attempt> = (0..32u32).map(|l| attempt(l, l as u64)).collect();
        let eps = EPSILONS[eps_sel];
        let flat = TiledSinrFeasibility::with_options(
            net.clone(),
            UniformPower::unit(),
            TileOptions::new(grid, eps),
        );
        let flat_sums = flat.slot_interference(&attempts);
        for levels in [2usize, 4] {
            for threads in THREADS {
                referee_at(
                    &net, UniformPower::unit(), &attempts, grid, eps, levels, threads)?;
                if eps == 0.0 {
                    let deep = TiledSinrFeasibility::with_options(
                        net.clone(),
                        UniformPower::unit(),
                        TileOptions::new(grid, eps).with_levels(levels),
                    )
                    .kernel_threads(threads);
                    let deep_sums = deep.slot_interference(&attempts);
                    for (&(link_a, sum_a), &(link_b, sum_b)) in
                        flat_sums.iter().zip(&deep_sums)
                    {
                        prop_assert_eq!(link_a, link_b);
                        prop_assert_eq!(
                            sum_a.to_bits(), sum_b.to_bits(),
                            "levels {} threads {} diverged at {}",
                            levels, threads, link_a
                        );
                    }
                }
            }
        }
    }

    /// Adaptive panel eviction under a one-panel budget must not change
    /// a single bit relative to the fixed build-time panels: the cache
    /// replacement policy is a speed layer, not a semantic one.
    #[test]
    fn adaptive_eviction_is_bitwise_neutral(
        seed in 0u64..200,
        grid in 2usize..9,
        eps_sel in 0usize..3,
        levels in 1usize..4,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::default_noiseless();
        let net = random_instance(16, 80.0, 0.8, 3.0, params, &mut rng);
        let attempts: Vec<Attempt> = (0..16u32).map(|l| attempt(l, l as u64)).collect();
        let eps = EPSILONS[eps_sel];
        let fixed = TiledSinrFeasibility::with_options(
            net.clone(),
            UniformPower::unit(),
            TileOptions::new(grid, eps).with_levels(levels),
        );
        // Budget fits at most one 4×4 panel, so any second panel evicts.
        let adaptive = TiledSinrFeasibility::with_options(
            net,
            UniformPower::unit(),
            TileOptions::new(grid, eps)
                .with_levels(levels)
                .with_panel_mode(PanelCacheMode::Adaptive)
                .with_panel_budget(16 * std::mem::size_of::<f64>()),
        );
        let srng = ChaCha12Rng::seed_from_u64(23);
        for _ in 0..3 {
            prop_assert_eq!(
                fixed.successes(&attempts, &mut srng.clone()),
                adaptive.successes(&attempts, &mut srng.clone())
            );
        }
        let a = fixed.slot_interference(&attempts);
        let b = adaptive.slot_interference(&attempts);
        for ((link_a, sum_a), (link_b, sum_b)) in a.into_iter().zip(b) {
            prop_assert_eq!(link_a, link_b);
            prop_assert_eq!(sum_a.to_bits(), sum_b.to_bits(), "at {}", link_a);
        }
    }

    /// Tiny panel budgets must not change a single bit: panels are a
    /// speed layer, not a semantic one.
    #[test]
    fn panel_budget_is_bitwise_neutral(
        seed in 0u64..200,
        budget_cells in 0usize..80,
        grid in 1usize..5,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::default_noiseless();
        let net = random_instance(12, 60.0, 1.0, 3.0, params, &mut rng);
        let attempts: Vec<Attempt> = (0..12u32).map(|l| attempt(l, l as u64)).collect();
        let full = TiledSinrFeasibility::new(
            net.clone(), UniformPower::unit(), grid, 0.0);
        let starved = TiledSinrFeasibility::with_budget(
            net, UniformPower::unit(), grid, 0.0,
            budget_cells * std::mem::size_of::<f64>());
        let srng = ChaCha12Rng::seed_from_u64(11);
        prop_assert_eq!(
            full.successes(&attempts, &mut srng.clone()),
            starved.successes(&attempts, &mut srng.clone())
        );
        let a = full.slot_interference(&attempts);
        let b = starved.slot_interference(&attempts);
        for ((link_a, sum_a), (link_b, sum_b)) in a.into_iter().zip(b) {
            prop_assert_eq!(link_a, link_b);
            prop_assert_eq!(sum_a.to_bits(), sum_b.to_bits(), "at {}", link_a);
        }
    }
}

/// The ISSUE's upper referee size: one deterministic m = 256 instance
/// across the full epsilon lattice, everything transmitting plus
/// duplicates.
#[test]
fn referee_at_m_256_across_epsilons() {
    let mut rng = ChaCha12Rng::seed_from_u64(2012);
    let params = SinrParams::with_noise(1e-4);
    let net = random_instance(256, 400.0, 0.8, 3.0, params, &mut rng);
    let mut attempts: Vec<Attempt> = (0..256u32).map(|l| attempt(l, l as u64)).collect();
    attempts.push(attempt(17, 500));
    attempts.push(attempt(200, 501));
    for grid in [1usize, 4, 16] {
        for eps in EPSILONS {
            referee(&net, LinearPower::new(params.alpha), &attempts, grid, eps)
                .unwrap_or_else(|e| panic!("grid {grid}, eps {eps}: {e}"));
        }
    }
}

/// The same m = 256 instance through the hierarchy: every
/// (levels, threads) cell of the lattice refereed at grid 16, which
/// gives the 4-level build genuine 8- and 4-per-side coarse levels.
#[test]
fn referee_at_m_256_across_levels_and_threads() {
    let mut rng = ChaCha12Rng::seed_from_u64(2012);
    let params = SinrParams::with_noise(1e-4);
    let net = random_instance(256, 400.0, 0.8, 3.0, params, &mut rng);
    let mut attempts: Vec<Attempt> = (0..256u32).map(|l| attempt(l, l as u64)).collect();
    attempts.push(attempt(17, 500));
    attempts.push(attempt(200, 501));
    for levels in [2usize, 4] {
        for threads in THREADS {
            for eps in EPSILONS {
                referee_at(
                    &net,
                    LinearPower::new(params.alpha),
                    &attempts,
                    16,
                    eps,
                    levels,
                    threads,
                )
                .unwrap_or_else(|e| panic!("levels {levels}, threads {threads}, eps {eps}: {e}"));
            }
        }
    }
}
