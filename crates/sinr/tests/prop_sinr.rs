//! Property-based tests tying the affectance abstraction to the exact
//! SINR oracle.

use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::{LinkId, PacketId};
use dps_core::interference::{validate, InterferenceModel};
use dps_core::load::LinkLoad;
use dps_sinr::affectance::{affectance, total_affectance};
use dps_sinr::feasibility::SinrFeasibility;
use dps_sinr::instances::random_instance;
use dps_sinr::matrix::SinrInterference;
use dps_sinr::network::SinrNetworkBuilder;
use dps_sinr::params::SinrParams;
use dps_sinr::power::{is_monotone_sublinear, LinearPower, SquareRootPower, UniformPower};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn attempt(link: LinkId, id: u64) -> Attempt {
    Attempt {
        link,
        packet: PacketId(id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The affectance-sum criterion agrees with the exact SINR inequality:
    /// a transmission succeeds iff the total affectance from the other
    /// transmitters is at most 1 (away from the float boundary).
    #[test]
    fn affectance_sum_equals_sinr_condition(seed in 0u64..400, subset_bits in 0u32..63) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::default_noiseless();
        let net = random_instance(6, 30.0, 1.0, 3.0, params, &mut rng);
        let power = LinearPower::new(params.alpha);
        let active: Vec<LinkId> = (0..6u32)
            .filter(|i| subset_bits & (1 << i) != 0)
            .map(LinkId)
            .collect();
        prop_assume!(!active.is_empty());
        let oracle = SinrFeasibility::new(net.clone(), power);
        let attempts: Vec<Attempt> = active
            .iter()
            .enumerate()
            .map(|(i, &l)| attempt(l, i as u64))
            .collect();
        let mut srng = ChaCha12Rng::seed_from_u64(1);
        let successes = oracle.successes(&attempts, &mut srng);
        for (i, &on) in active.iter().enumerate() {
            let others: Vec<LinkId> = active
                .iter()
                .copied()
                .filter(|&l| l != on)
                .collect();
            let sum = total_affectance(&net, &power, &others, on);
            // Clamping at 1 can only hide mass when already infeasible, so
            // away from the boundary the equivalence is exact.
            if (sum - 1.0).abs() > 1e-6 && others.iter().all(|&o| affectance(&net, &power, o, on) < 1.0 - 1e-9) {
                prop_assert_eq!(
                    successes[i],
                    sum < 1.0,
                    "link {} with affectance sum {}",
                    on,
                    sum
                );
            }
        }
    }

    /// Affectance is scale-invariant for noiseless linear powers: scaling
    /// all coordinates leaves every affectance unchanged.
    #[test]
    fn affectance_scale_invariance(seed in 0u64..200, factor in 0.5f64..4.0) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::default_noiseless();
        let base = random_instance(4, 20.0, 1.0, 2.0, params, &mut rng);
        // Rebuild the same instance scaled by `factor`.
        let mut b = SinrNetworkBuilder::new(params);
        for link in base.network().link_ids() {
            let s = base.sender_pos(link);
            let r = base.receiver_pos(link);
            b.add_isolated_link((s.x * factor, s.y * factor), (r.x * factor, r.y * factor));
        }
        let scaled = b.build();
        let power = LinearPower::new(params.alpha);
        for from in base.network().link_ids() {
            for on in base.network().link_ids() {
                let a0 = affectance(&base, &power, from, on);
                let a1 = affectance(&scaled, &power, from, on);
                prop_assert!((a0 - a1).abs() < 1e-9, "{a0} vs {a1}");
            }
        }
    }

    /// All three §6 matrix constructions validate on random geometry, and
    /// the fixed-power measure of a single link's load is exactly 1.
    #[test]
    fn matrices_validate_on_random_geometry(seed in 0u64..300) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::default_noiseless();
        let net = random_instance(5, 25.0, 0.5, 4.0, params, &mut rng);
        let lin = LinearPower::new(params.alpha);
        let w = SinrInterference::fixed_power(&net, &lin);
        prop_assert!(validate(&w).is_ok());
        prop_assert!(validate(&SinrInterference::monotone_power(&net, &lin)).is_ok());
        prop_assert!(validate(&SinrInterference::power_control(&net)).is_ok());
        let mut load = LinkLoad::new(5);
        load.set(LinkId(0), 1.0);
        // Row 0 sees exactly its own unit load; other rows see at most 1.
        prop_assert!((w.row_load(LinkId(0), &load) - 1.0).abs() < 1e-12);
        prop_assert!(w.measure(&load) >= 1.0 - 1e-12);
    }

    /// The provided power assignments are monotone sub-linear over any
    /// sampled length set (the §6.1 precondition).
    #[test]
    fn assignments_are_monotone_sublinear(
        lengths in proptest::collection::vec(0.2f64..50.0, 2..12),
        alpha in 2.0f64..5.0,
    ) {
        prop_assert!(is_monotone_sublinear(&UniformPower::unit(), alpha, &lengths));
        prop_assert!(is_monotone_sublinear(&LinearPower::new(alpha), alpha, &lengths));
        prop_assert!(is_monotone_sublinear(&SquareRootPower::new(alpha), alpha, &lengths));
    }

    /// The cached fast-path oracle (precomputed signals/margins + dense
    /// gain table, O(k²) over attempted links) makes bit-for-bit the same
    /// decisions as the naive recomputation (O(k·m), sqrt/powf from
    /// scratch) — on random geometry, with duplicate attempts on one link
    /// mixed in, under both uniform and linear powers and with noise.
    #[test]
    fn cached_oracle_matches_naive_bit_for_bit(
        seed in 0u64..500,
        subset_bits in 1u32..255,
        dup_link in 0u32..8,
        noise_sel in 0u32..3,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = match noise_sel {
            0 => SinrParams::default_noiseless(),
            1 => SinrParams::with_noise(1e-4),
            _ => SinrParams::with_noise(0.05),
        };
        let net = random_instance(8, 35.0, 0.8, 3.5, params, &mut rng);
        let mut attempts: Vec<Attempt> = (0..8u32)
            .filter(|i| subset_bits & (1 << i) != 0)
            .enumerate()
            .map(|(i, l)| attempt(LinkId(l), i as u64))
            .collect();
        // A same-link collision with probability ~1/2, to exercise the
        // multiplicity rule and count-weighted interference.
        if subset_bits & (1 << (dup_link % 8)) != 0 {
            attempts.push(attempt(LinkId(dup_link % 8), 99));
        }
        let srng = ChaCha12Rng::seed_from_u64(1);
        for power_sel in 0..2 {
            let run = |dense_limit: Option<usize>| -> (Vec<bool>, Vec<bool>) {
                macro_rules! with_power {
                    ($p:expr) => {{
                        let oracle = match dense_limit {
                            Some(limit) => SinrFeasibility::with_dense_limit(
                                net.clone(), $p, limit),
                            None => SinrFeasibility::new(net.clone(), $p),
                        };
                        (
                            oracle.successes(&attempts, &mut srng.clone()),
                            oracle.successes_naive(&attempts, &mut srng.clone()),
                        )
                    }};
                }
                if power_sel == 0 {
                    with_power!(UniformPower::unit())
                } else {
                    with_power!(LinearPower::new(params.alpha))
                }
            };
            // Dense gain table…
            let (fast, naive) = run(None);
            prop_assert_eq!(&fast, &naive, "dense path diverged (power {})", power_sel);
            // …and the on-the-fly fallback.
            let (fast, naive) = run(Some(0));
            prop_assert_eq!(&fast, &naive, "fallback path diverged (power {})", power_sel);
        }
    }

    /// The line-network edge case: consecutive links share a node, so a
    /// cross distance of exactly zero occurs — the cached NaN encoding
    /// must reproduce the naive "blocked receiver" verdicts.
    #[test]
    fn cached_oracle_matches_naive_on_shared_nodes(hops in 2usize..7, spacing in 0.5f64..3.0) {
        let net = dps_sinr::instances::line_instance(
            hops, spacing, SinrParams::default_noiseless());
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        let attempts: Vec<Attempt> = (0..hops as u32)
            .map(|l| attempt(LinkId(l), l as u64))
            .collect();
        let mut srng = ChaCha12Rng::seed_from_u64(3);
        let fast = oracle.successes(&attempts, &mut srng);
        let naive = oracle.successes_naive(&attempts, &mut srng);
        prop_assert_eq!(fast, naive);
    }

    /// The blocked kernel at slot sizes spanning several lane blocks plus
    /// a remainder: on 24-link geometry, every subset of up to 24
    /// attempted links — with duplicate attempts sprinkled in — must
    /// produce bit-for-bit the naive verdicts, through the dense table
    /// (the blocked kernel), through the on-the-fly fallback (the scalar
    /// path), and through an exactly-fitting memory budget.
    #[test]
    fn blocked_kernel_matches_naive_at_multi_lane_widths(
        seed in 0u64..300,
        subset_bits in 1u32..0xff_ffff,
        dup_a in 0u32..24,
        dup_b in 0u32..24,
        noisy in 0u32..2,
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = if noisy == 1 {
            SinrParams::with_noise(1e-3)
        } else {
            SinrParams::default_noiseless()
        };
        let net = random_instance(24, 60.0, 0.8, 3.0, params, &mut rng);
        let mut attempts: Vec<Attempt> = (0..24u32)
            .filter(|i| subset_bits & (1 << i) != 0)
            .enumerate()
            .map(|(i, l)| attempt(LinkId(l), i as u64))
            .collect();
        // Two duplicate attempts: multiplicity 2 (and possibly 3) links
        // exercise the count-weighted lanes and the collision rule.
        attempts.push(attempt(LinkId(dup_a), 100));
        attempts.push(attempt(LinkId(dup_b), 101));
        let power = LinearPower::new(params.alpha);
        let budget = 24 * 24 * std::mem::size_of::<f64>();
        let oracles = [
            SinrFeasibility::new(net.clone(), power),
            SinrFeasibility::with_dense_limit(net.clone(), power, 0),
            SinrFeasibility::with_memory_budget(net.clone(), power, budget),
        ];
        prop_assert!(oracles[0].cache().is_dense());
        prop_assert!(!oracles[1].cache().is_dense());
        prop_assert!(oracles[2].cache().is_dense());
        let mut srng = ChaCha12Rng::seed_from_u64(5);
        let naive = oracles[0].successes_naive(&attempts, &mut srng.clone());
        for (which, oracle) in oracles.iter().enumerate() {
            let fast = oracle.successes(&attempts, &mut srng);
            prop_assert_eq!(&fast, &naive, "oracle {} diverged", which);
        }
    }

    /// Shared-node (zero cross distance) links mixed with duplicates at
    /// multi-lane widths: the dense kernel's NaN rows must poison exactly
    /// the receivers the naive rule blocks.
    #[test]
    fn blocked_kernel_matches_naive_on_long_shared_node_lines(
        hops in 5usize..20,
        spacing in 0.5f64..3.0,
        dup in 0u32..5,
    ) {
        let net = dps_sinr::instances::line_instance(
            hops, spacing, SinrParams::default_noiseless());
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        let mut attempts: Vec<Attempt> = (0..hops as u32)
            .map(|l| attempt(LinkId(l), l as u64))
            .collect();
        attempts.push(attempt(LinkId(dup % hops as u32), 99));
        let mut srng = ChaCha12Rng::seed_from_u64(3);
        let fast = oracle.successes(&attempts, &mut srng);
        let naive = oracle.successes_naive(&attempts, &mut srng);
        prop_assert_eq!(fast, naive);
    }

    /// Feasibility is monotone under removal: if a set of transmissions
    /// lets link x succeed, removing other transmitters keeps x succeeding
    /// (noise-free SINR has no capture inversions).
    #[test]
    fn success_is_monotone_under_removal(seed in 0u64..200, drop_idx in 0usize..5) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let params = SinrParams::default_noiseless();
        let net = random_instance(6, 40.0, 1.0, 3.0, params, &mut rng);
        let oracle = SinrFeasibility::new(net, UniformPower::unit());
        let all: Vec<Attempt> = (0..6u32).map(|l| attempt(LinkId(l), l as u64)).collect();
        let mut srng = ChaCha12Rng::seed_from_u64(2);
        let full = oracle.successes(&all, &mut srng);
        let reduced: Vec<Attempt> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_idx.min(5))
            .map(|(_, &a)| a)
            .collect();
        let after = oracle.successes(&reduced, &mut srng);
        for (i, a) in reduced.iter().enumerate() {
            let before = full[all.iter().position(|b| b.link == a.link).unwrap()];
            if before {
                prop_assert!(after[i], "link {} regressed after removal", a.link);
            }
        }
    }
}
