//! **Algorithm 2** (Section 7.1): the symmetric static scheduling
//! algorithm for the multiple-access channel.
//!
//! Stage 1 (`ξ` iterations): every remaining packet draws a uniformly
//! random delay below `⌊(1 − 1/e(1+δ))^i · n⌋` and transmits exactly once,
//! at its delay slot. Each iteration serves a `1/e(1+δ)` fraction in
//! expectation (a packet succeeds iff it is alone in its slot), so both
//! the window and the survivor count shrink geometrically — total stage-1
//! length `≈ (1+δ)·e·n`.
//!
//! Stage 2 (`s·e·(φ+1)·ln n` slots with `s = 2φ·ln n·2e²(1+δ)²/δ²`): each
//! survivor transmits independently with probability `1/s` per slot,
//! finishing all stragglers w.h.p.
//!
//! Lemma 15: `n` packets are transmitted within
//! `(1+δ)·e·n + O(φ²·log²n)` slots with probability `≥ 1 − 1/n^φ`. The
//! algorithm is acknowledgment-based and fully symmetric — no station
//! identifiers — so the transformed dynamic protocol is too.

use dps_core::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::{Rng, RngCore};

/// Factory for Algorithm 2.
///
/// The stage-2 constants of Lemma 15
/// (`s = 2φ·ln n · 2e²(1+δ)²/δ²`) are worst-case bounds whose `log²n`
/// term dominates the `(1+δ)e·n` term until `n ≈ 10⁶`; the default
/// configuration keeps the exact two-stage structure but uses a practical
/// `s = 8φ·ln n` (tests verify w.h.p. completion empirically), and
/// [`SymmetricMacScheduler::with_paper_constants`] switches to the
/// verbatim Lemma 15 values.
#[derive(Clone, Copy, Debug)]
pub struct SymmetricMacScheduler {
    delta: f64,
    phi: f64,
    paper_constants: bool,
    tail_scale: f64,
}

impl SymmetricMacScheduler {
    /// Creates the scheduler with throughput slack `δ` and failure
    /// exponent `φ` (success probability `1 − 1/n^φ`).
    ///
    /// # Panics
    ///
    /// Panics unless `delta > 0` and `phi >= 1`.
    pub fn new(delta: f64, phi: f64) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        assert!(phi >= 1.0 && phi.is_finite(), "phi must be at least 1");
        SymmetricMacScheduler {
            delta,
            phi,
            paper_constants: false,
            tail_scale: 8.0,
        }
    }

    /// The default `δ = 0.5`, `φ = 1`.
    pub fn default_params() -> Self {
        SymmetricMacScheduler::new(0.5, 1.0)
    }

    /// Switches stage 2 to the verbatim constants of Lemma 15.
    pub fn with_paper_constants(mut self) -> Self {
        self.paper_constants = true;
        self
    }

    /// Per-iteration survival factor `1 − 1/e(1+δ)`.
    fn decay(&self) -> f64 {
        1.0 - 1.0 / (std::f64::consts::E * (1.0 + self.delta))
    }

    /// Window size below which stage 1 hands over to the tail.
    fn target_window(&self, n: usize) -> f64 {
        let n_f = (n.max(2)) as f64;
        if self.paper_constants {
            2.0 * self.phi.powi(2) * std::f64::consts::E * (1.0 + self.delta).powi(2)
                / self.delta.powi(2)
                * n_f.ln()
        } else {
            // Hand over once survivors are a small multiple of the tail
            // period, keeping tail contention constant.
            self.s_param(n) / 2.0
        }
    }

    /// Number of stage-1 iterations `ξ` for `n` packets.
    fn xi(&self, n: usize) -> usize {
        if n < 2 {
            return 0;
        }
        let target = self.target_window(n).max(1.0);
        ((n as f64 / target).ln() / -self.decay().ln())
            .ceil()
            .max(0.0) as usize
    }

    /// Stage-2 transmission period `s`.
    fn s_param(&self, n: usize) -> f64 {
        let n_f = (n.max(2)) as f64;
        if self.paper_constants {
            2.0 * self.phi
                * n_f.ln()
                * (2.0 * std::f64::consts::E.powi(2) * (1.0 + self.delta).powi(2)
                    / self.delta.powi(2))
        } else {
            self.tail_scale * self.phi * n_f.ln()
        }
    }

    /// Stage-2 length.
    fn tail_len(&self, n: usize) -> usize {
        let n_f = (n.max(2)) as f64;
        (self.s_param(n) * std::f64::consts::E * (self.phi + 1.0) * n_f.ln()).ceil() as usize
    }
}

impl StaticScheduler for SymmetricMacScheduler {
    fn instantiate(
        &self,
        requests: &[Request],
        _measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let n = requests.len();
        let mut run = Algorithm2Run {
            pending: vec![true; n],
            remaining: n,
            scheduled: Vec::new(),
            slot_in_window: 0,
            window: 0,
            iteration: 0,
            xi: self.xi(n),
            decay: self.decay(),
            n0: n,
            tail_p: 1.0 / self.s_param(n),
            in_tail: n < 2,
        };
        run.start_iteration(rng);
        Box::new(run)
    }

    fn f_of(&self, _n: usize) -> f64 {
        // Stage 1 dominates: Σ_i decay^i·n ≤ (1+δ)·e·n, and the measure on
        // the MAC *is* n.
        (1.0 + self.delta) * std::f64::consts::E
    }

    fn g_of(&self, n: usize) -> f64 {
        self.tail_len(n) as f64 + self.xi(n) as f64
    }

    fn name(&self) -> &str {
        "mac-algorithm2"
    }
}

struct Algorithm2Run {
    pending: Vec<bool>,
    remaining: usize,
    /// Stage 1: packets sorted into their delay slots for the current
    /// iteration; `scheduled[d]` holds the packets with delay `d`.
    scheduled: Vec<Vec<usize>>,
    slot_in_window: usize,
    window: usize,
    iteration: usize,
    xi: usize,
    decay: f64,
    n0: usize,
    tail_p: f64,
    in_tail: bool,
}

impl Algorithm2Run {
    fn start_iteration(&mut self, rng: &mut dyn RngCore) {
        loop {
            self.iteration += 1;
            if self.in_tail || self.iteration > self.xi {
                self.in_tail = true;
                return;
            }
            let window = (self.decay.powi(self.iteration as i32) * self.n0 as f64).floor() as usize;
            if window == 0 {
                self.in_tail = true;
                return;
            }
            self.window = window;
            self.slot_in_window = 0;
            self.scheduled = vec![Vec::new(); window];
            let mut any = false;
            for (idx, &pending) in self.pending.iter().enumerate() {
                if pending {
                    self.scheduled[rng.gen_range(0..window)].push(idx);
                    any = true;
                }
            }
            if any {
                return;
            }
            // No pending packets: skip ahead (nothing to schedule).
        }
    }
}

impl StaticAlgorithm for Algorithm2Run {
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize> {
        if self.remaining == 0 {
            return Vec::new();
        }
        if !self.in_tail && self.slot_in_window >= self.window {
            self.start_iteration(rng);
        }
        if self.in_tail {
            return self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, &p)| p)
                .filter(|_| rng.gen::<f64>() < self.tail_p)
                .map(|(i, _)| i)
                .collect();
        }
        let slot = self.slot_in_window;
        self.slot_in_window += 1;
        self.scheduled[slot]
            .iter()
            .copied()
            .filter(|&i| self.pending[i])
            .collect()
    }

    fn ack(&mut self, idx: usize) {
        if std::mem::replace(&mut self.pending[idx], false) {
            self.remaining -= 1;
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::feasibility::SingleChannelFeasibility;
    use dps_core::ids::{LinkId, PacketId};
    use dps_core::rng::root_rng;
    use dps_core::staticsched::run_static;

    fn requests(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                packet: PacketId(i as u64),
                link: LinkId((i % 8) as u32),
            })
            .collect()
    }

    #[test]
    fn serves_all_packets_within_budget() {
        let scheduler = SymmetricMacScheduler::default_params();
        let n = 256;
        let reqs = requests(n);
        let feas = SingleChannelFeasibility::new();
        let budget = scheduler.slots_needed(n as f64, n);
        let mut rng = root_rng(8);
        let result = run_static(&scheduler, &reqs, n as f64, &feas, budget, &mut rng);
        assert!(
            result.all_served(),
            "served {}/{n} within {budget}",
            result.served_count()
        );
    }

    #[test]
    fn schedule_length_is_near_e_times_n() {
        // Lemma 15: (1+δ)·e·n + polylog. With the practical tail constants
        // the linear term dominates at n = 2048 and slots/n lands near
        // (1+δ)·e ≈ 4.1. (δ must not be too small: stage 1's occupancy
        // recursion c ↦ c·(1−e^{−c})/(1−1/e(1+δ)) has its stable basin
        // only below c* = 1 + ln(1+δ), and the initial occupancy 1/decay
        // exceeds c* once δ ≲ 0.4.)
        let scheduler = SymmetricMacScheduler::new(0.5, 1.0);
        let n = 2048;
        let reqs = requests(n);
        let feas = SingleChannelFeasibility::new();
        let mut rng = root_rng(21);
        let budget = 4 * scheduler.slots_needed(n as f64, n);
        let result = run_static(&scheduler, &reqs, n as f64, &feas, budget, &mut rng);
        assert!(result.all_served());
        let ratio = result.slots_used as f64 / n as f64;
        assert!(
            (1.5..8.0).contains(&ratio),
            "slots/n = {ratio}, expected around (1+δ)e ≈ 4.1"
        );
    }

    #[test]
    fn paper_constants_complete_within_their_budget() {
        let scheduler = SymmetricMacScheduler::new(0.5, 1.0).with_paper_constants();
        let n = 512;
        let reqs = requests(n);
        let feas = SingleChannelFeasibility::new();
        let budget = scheduler.slots_needed(n as f64, n);
        let mut rng = root_rng(4);
        let result = run_static(&scheduler, &reqs, n as f64, &feas, budget, &mut rng);
        assert!(
            result.all_served(),
            "served {}/{n} within the Lemma 15 budget {budget}",
            result.served_count()
        );
    }

    #[test]
    fn stage1_serves_most_packets() {
        // Run only the stage-1 budget (no tail) and verify ≥ half are
        // served — the geometric decay at work.
        let scheduler = SymmetricMacScheduler::default_params();
        let n = 512;
        let reqs = requests(n);
        let feas = SingleChannelFeasibility::new();
        let stage1_budget = ((1.0 + 0.5) * std::f64::consts::E * n as f64).ceil() as usize;
        let mut rng = root_rng(3);
        let result = run_static(&scheduler, &reqs, n as f64, &feas, stage1_budget, &mut rng);
        assert!(
            result.served_count() > n / 2,
            "stage 1 served only {}/{n}",
            result.served_count()
        );
    }

    #[test]
    fn xi_grows_logarithmically() {
        let s = SymmetricMacScheduler::default_params();
        let xi_small = s.xi(64);
        let xi_large = s.xi(64 * 64);
        assert!(xi_large > xi_small);
        // Doubling the exponent roughly doubles xi (log behaviour), it
        // does not explode.
        assert!(xi_large < 4 * xi_small.max(4));
    }

    #[test]
    fn single_packet_is_served_in_tail() {
        let scheduler = SymmetricMacScheduler::default_params();
        let reqs = requests(1);
        let feas = SingleChannelFeasibility::new();
        let mut rng = root_rng(2);
        let result = run_static(&scheduler, &reqs, 1.0, &feas, 10_000, &mut rng);
        assert!(result.all_served());
    }

    #[test]
    fn guarantee_coefficient_is_constant_in_n() {
        let s = SymmetricMacScheduler::default_params();
        assert_eq!(s.f_of(10), s.f_of(1_000_000));
        assert!((s.f_of(10) - 1.5 * std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_zero_delta() {
        let _ = SymmetricMacScheduler::new(0.0, 1.0);
    }
}
