//! **Round-Robin-Withholding** (Lemma 17, following Chlebus et al. \[13\]):
//! the asymmetric multiple-access-channel algorithm.
//!
//! Stations (= links) have unique identifiers and can distinguish silence
//! from a successful transmission. Station 0 transmits its packets one per
//! slot; the first silent slot signals station 1 to start, and so on.
//! `n` packets across `m` stations finish in exactly `n + m` slots —
//! deterministically — which through the dynamic transformation yields a
//! stable protocol for every injection rate `λ < 1` (Corollary 18).

use dps_core::ids::LinkId;
use dps_core::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::RngCore;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Factory for Round-Robin-Withholding over `m` stations.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobinWithholding {
    num_stations: usize,
}

impl RoundRobinWithholding {
    /// Creates the scheduler for a channel shared by `num_stations`
    /// stations.
    ///
    /// # Panics
    ///
    /// Panics if `num_stations == 0`.
    pub fn new(num_stations: usize) -> Self {
        assert!(num_stations > 0, "need at least one station");
        RoundRobinWithholding { num_stations }
    }
}

impl StaticScheduler for RoundRobinWithholding {
    fn instantiate(
        &self,
        requests: &[Request],
        _measure_bound: f64,
        _rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let mut queues: BTreeMap<LinkId, VecDeque<usize>> = BTreeMap::new();
        for (idx, req) in requests.iter().enumerate() {
            queues.entry(req.link).or_default().push_back(idx);
        }
        Box::new(RoundRobinRun {
            stations: (0..self.num_stations as u32).map(LinkId).collect(),
            queues,
            current: 0,
            awaiting_silence: false,
            remaining: requests.len(),
        })
    }

    fn f_of(&self, _n: usize) -> f64 {
        1.0
    }

    fn g_of(&self, _n: usize) -> f64 {
        self.num_stations as f64
    }

    fn name(&self) -> &str {
        "round-robin-withholding"
    }
}

struct RoundRobinRun {
    stations: Vec<LinkId>,
    queues: BTreeMap<LinkId, VecDeque<usize>>,
    current: usize,
    /// True while the current station has drained and this slot is the
    /// silence signalling the next station.
    awaiting_silence: bool,
    remaining: usize,
}

impl StaticAlgorithm for RoundRobinRun {
    fn attempts(&mut self, _rng: &mut dyn RngCore) -> Vec<usize> {
        if self.remaining == 0 || self.current >= self.stations.len() {
            return Vec::new();
        }
        if self.awaiting_silence {
            // The silent slot: nobody transmits; the next station takes
            // over afterwards.
            self.awaiting_silence = false;
            self.current += 1;
            return Vec::new();
        }
        let station = self.stations[self.current];
        match self.queues.get(&station).and_then(|q| q.front()) {
            Some(&idx) => vec![idx],
            None => {
                // Station has nothing (or is done): its very first slot is
                // already silent; hand over immediately.
                self.current += 1;
                Vec::new()
            }
        }
    }

    fn ack(&mut self, idx: usize) {
        let station = self.stations[self.current];
        let queue = self.queues.get_mut(&station).expect("acked station exists");
        assert_eq!(queue.front(), Some(&idx), "ack must match the head packet");
        queue.pop_front();
        self.remaining -= 1;
        if queue.is_empty() {
            // Drained: the next slot stays silent to signal the handover.
            self.awaiting_silence = true;
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 || self.current >= self.stations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::feasibility::SingleChannelFeasibility;
    use dps_core::ids::PacketId;
    use dps_core::rng::root_rng;
    use dps_core::staticsched::run_static;

    fn requests(stations: &[u32]) -> Vec<Request> {
        stations
            .iter()
            .enumerate()
            .map(|(i, &s)| Request {
                packet: PacketId(i as u64),
                link: LinkId(s),
            })
            .collect()
    }

    #[test]
    fn finishes_in_n_plus_m_slots() {
        let m = 4;
        let reqs = requests(&[0, 0, 1, 3, 3, 3]);
        let n = reqs.len();
        let scheduler = RoundRobinWithholding::new(m);
        let feas = SingleChannelFeasibility::new();
        let mut rng = root_rng(1);
        let result = run_static(&scheduler, &reqs, n as f64, &feas, n + m + 1, &mut rng);
        assert!(result.all_served());
        assert!(
            result.slots_used <= n + m,
            "used {} slots, bound is n + m = {}",
            result.slots_used,
            n + m
        );
    }

    #[test]
    fn is_deterministic() {
        let reqs = requests(&[0, 1, 2]);
        let scheduler = RoundRobinWithholding::new(3);
        let feas = SingleChannelFeasibility::new();
        let mut r1 = root_rng(1);
        let mut r2 = root_rng(999);
        let a = run_static(&scheduler, &reqs, 3.0, &feas, 10, &mut r1);
        let b = run_static(&scheduler, &reqs, 3.0, &feas, 10, &mut r2);
        assert_eq!(a.served_at, b.served_at, "schedule must not depend on rng");
    }

    #[test]
    fn stations_transmit_in_id_order() {
        let reqs = requests(&[2, 0]);
        let scheduler = RoundRobinWithholding::new(3);
        let feas = SingleChannelFeasibility::new();
        let mut rng = root_rng(1);
        let result = run_static(&scheduler, &reqs, 2.0, &feas, 10, &mut rng);
        // Station 0's packet (request index 1) goes first.
        assert!(result.served_at[1].unwrap() < result.served_at[0].unwrap());
    }

    #[test]
    fn empty_stations_cost_one_slot_each() {
        // Only station 3 has packets: 3 silent handover slots first.
        let reqs = requests(&[3]);
        let scheduler = RoundRobinWithholding::new(4);
        let feas = SingleChannelFeasibility::new();
        let mut rng = root_rng(1);
        let result = run_static(&scheduler, &reqs, 1.0, &feas, 10, &mut rng);
        assert_eq!(result.served_at[0], Some(3));
    }

    #[test]
    fn empty_instance_is_done() {
        let scheduler = RoundRobinWithholding::new(2);
        let mut rng = root_rng(1);
        let alg = scheduler.instantiate(&[], 0.0, &mut rng);
        assert!(alg.is_done());
    }

    #[test]
    fn guarantee_is_linear_plus_m() {
        let s = RoundRobinWithholding::new(16);
        assert_eq!(s.f_of(1000), 1.0);
        assert_eq!(s.g_of(1000), 16.0);
        assert_eq!(s.slots_needed(100.0, 100), 117);
    }
}
