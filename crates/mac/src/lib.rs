//! Multiple-access-channel substrate for *Dynamic Packet Scheduling in
//! Wireless Networks* (Kesselheim, PODC 2012), Section 7.1.
//!
//! On a multiple-access channel all stations share one medium: a slot is
//! useful iff exactly one station transmits. In the paper's abstraction
//! this is the all-ones interference matrix
//! ([`dps_core::interference::CompleteInterference`]) — the measure of a
//! request set is simply its size — with
//! [`dps_core::feasibility::SingleChannelFeasibility`] as the physical
//! layer.
//!
//! Two static algorithms cover the two classic regimes:
//!
//! * [`algorithm2::SymmetricMacScheduler`] — **Algorithm 2** of the paper:
//!   a symmetric (no station identifiers), acknowledgment-based algorithm
//!   transmitting `n` packets in `(1+δ)·e·n + O(φ²·log²n)` slots w.h.p.
//!   (Lemma 15); through the dynamic transformation it yields a stable
//!   symmetric protocol for every injection rate `λ < 1/e` (Corollary 16).
//! * [`round_robin::RoundRobinWithholding`] — the asymmetric (station
//!   ids + channel sensing) algorithm of Lemma 17, finishing in `n + m`
//!   slots, yielding stability for every `λ < 1` (Corollary 18).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod algorithm2;
pub mod round_robin;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::algorithm2::SymmetricMacScheduler;
    pub use crate::round_robin::RoundRobinWithholding;
    pub use dps_core::feasibility::SingleChannelFeasibility;
    pub use dps_core::interference::CompleteInterference;
}
