//! Route generators over classic packet-routing topologies, and a bundled
//! setup helper for the routing experiments (E11).

use dps_core::error::ModelError;
use dps_core::feasibility::PerLinkFeasibility;
use dps_core::graph::{grid_network, line_network, ring_network, Network};
use dps_core::ids::LinkId;
use dps_core::interference::IdentityInterference;
use dps_core::path::RoutePath;
use dps_core::route_table::RouteTable;
use std::sync::Arc;

/// All fixed-length routes on a directed line of `num_links` links:
/// for every admissible start, the route crossing `len` consecutive links.
///
/// # Errors
///
/// Returns [`ModelError::PathTooLong`] if `len` exceeds the line length.
pub fn line_routes(num_links: usize, len: usize) -> Result<Vec<Arc<RoutePath>>, ModelError> {
    let network = line_network(num_links);
    if len == 0 || len > num_links {
        return Err(ModelError::PathTooLong {
            len,
            max: num_links,
        });
    }
    (0..=num_links - len)
        .map(|start| {
            RoutePath::new(
                &network,
                (start..start + len).map(|i| LinkId(i as u32)).collect(),
            )
            .map(RoutePath::shared)
        })
        .collect()
}

/// All routes of length `len` on a directed ring of `num_nodes` nodes
/// (one starting at each node).
///
/// # Errors
///
/// Returns [`ModelError::PathTooLong`] if `len` exceeds the ring size.
pub fn ring_routes(num_nodes: usize, len: usize) -> Result<Vec<Arc<RoutePath>>, ModelError> {
    let network = ring_network(num_nodes);
    if len == 0 || len > num_nodes {
        return Err(ModelError::PathTooLong {
            len,
            max: num_nodes,
        });
    }
    (0..num_nodes)
        .map(|start| {
            RoutePath::new(
                &network,
                (0..len)
                    .map(|i| LinkId(((start + i) % num_nodes) as u32))
                    .collect(),
            )
            .map(RoutePath::shared)
        })
        .collect()
}

/// Row-then-column routes on a `rows × cols` grid: from each row start to
/// each column end, going right along the row then down the column — the
/// classic dimension-ordered workload.
pub fn grid_row_column_routes(rows: usize, cols: usize) -> Vec<Arc<RoutePath>> {
    let network = grid_network(rows, cols);
    // Map from (node, node) to the connecting link.
    let mut routes = Vec::new();
    let link_between = |src: usize, dst: usize| -> Option<LinkId> {
        network
            .outgoing(dps_core::ids::NodeId(src as u32))
            .iter()
            .copied()
            .find(|&l| network.link(l).dst.index() == dst)
    };
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for target_c in 1..cols {
            for target_r in 1..rows {
                // Right from (r, 0) to (r, target_c), then down to
                // (target_r', target_c) where target_r' ≥ r.
                if target_r <= r {
                    continue;
                }
                let mut links = Vec::new();
                for c in 0..target_c {
                    links.push(link_between(at(r, c), at(r, c + 1)).expect("grid link"));
                }
                for rr in r..target_r {
                    links.push(
                        link_between(at(rr, target_c), at(rr + 1, target_c)).expect("grid link"),
                    );
                }
                routes.push(
                    RoutePath::new(&network, links)
                        .expect("dimension-ordered routes are connected")
                        .shared(),
                );
            }
        }
    }
    routes
}

/// A bundled routing setup: network, identity interference, per-link
/// feasibility, and a route family — everything the routing experiments
/// need.
///
/// The route family is routed through a [`RouteTable`]: structurally
/// identical routes collapse to one interned entry, and `routes` holds
/// the table's canonical `Arc`s, so every packet injected on the same
/// route shares one allocation and downstream protocols interning the
/// same family hit the table's pointer fast path.
#[derive(Clone, Debug)]
pub struct RoutingSetup {
    /// The network topology.
    pub network: Network,
    /// Identity interference (`measure = congestion`).
    pub model: IdentityInterference,
    /// One-packet-per-link feasibility.
    pub feasibility: PerLinkFeasibility,
    /// The workload's routes (canonical handles from `table`; one entry
    /// per generated route, duplicates included).
    pub routes: Vec<Arc<RoutePath>>,
    /// The interned route dictionary (one entry per *distinct* route).
    pub table: RouteTable,
}

impl RoutingSetup {
    /// Bundles an arbitrary route family over `network`, interning it
    /// through a fresh [`RouteTable`].
    pub fn with_routes(network: Network, routes: Vec<Arc<RoutePath>>) -> Self {
        let mut table = RouteTable::new();
        let routes = routes
            .iter()
            .map(|r| {
                let id = table.intern(r);
                table.get(id).clone()
            })
            .collect();
        RoutingSetup {
            model: IdentityInterference::new(network.num_links()),
            feasibility: PerLinkFeasibility::new(network.num_links()),
            network,
            routes,
            table,
        }
    }

    /// A ring of `num_nodes` nodes with all routes of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PathTooLong`] if `len` exceeds the ring size.
    pub fn ring(num_nodes: usize, len: usize) -> Result<Self, ModelError> {
        let routes = ring_routes(num_nodes, len)?;
        Ok(Self::with_routes(ring_network(num_nodes), routes))
    }

    /// A line of `num_links` links with all routes of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PathTooLong`] if `len` exceeds the line.
    pub fn line(num_links: usize, len: usize) -> Result<Self, ModelError> {
        let routes = line_routes(num_links, len)?;
        Ok(Self::with_routes(line_network(num_links), routes))
    }

    /// A `rows × cols` grid with dimension-ordered routes.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let routes = grid_row_column_routes(rows, cols);
        Self::with_routes(grid_network(rows, cols), routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_cover_all_starts() {
        let routes = line_routes(5, 3).unwrap();
        assert_eq!(routes.len(), 3);
        for r in &routes {
            assert_eq!(r.len(), 3);
        }
        assert!(line_routes(5, 6).is_err());
    }

    #[test]
    fn ring_routes_wrap_around() {
        let routes = ring_routes(4, 2).unwrap();
        assert_eq!(routes.len(), 4);
        // The route starting at node 3 uses links 3 and 0.
        assert_eq!(routes[3].links(), &[LinkId(3), LinkId(0)]);
    }

    #[test]
    fn grid_routes_are_valid_paths() {
        let routes = grid_row_column_routes(3, 3);
        assert!(!routes.is_empty());
        for r in &routes {
            assert!(r.len() >= 2, "dimension-ordered routes turn at least once");
        }
    }

    #[test]
    fn ring_setup_is_consistent() {
        let setup = RoutingSetup::ring(6, 3).unwrap();
        assert_eq!(setup.network.num_links(), 6);
        assert_eq!(setup.routes.len(), 6);
        use dps_core::interference::InterferenceModel;
        assert_eq!(setup.model.num_links(), 6);
    }

    #[test]
    fn grid_setup_builds() {
        let setup = RoutingSetup::grid(3, 4);
        assert_eq!(setup.network.num_nodes(), 12);
        assert!(!setup.routes.is_empty());
    }

    #[test]
    fn workload_routes_are_table_canonical() {
        // Built-in generators emit distinct routes: the table holds one
        // entry per route, and `routes` aliases the table's Arcs.
        let setup = RoutingSetup::ring(6, 2).unwrap();
        assert_eq!(setup.table.len(), setup.routes.len());
        for (i, r) in setup.routes.iter().enumerate() {
            assert!(Arc::ptr_eq(
                r,
                setup.table.get(dps_core::route_table::RouteId(i as u32))
            ));
        }
    }

    #[test]
    fn duplicate_routes_collapse_in_the_table() {
        // A workload hammering one link from several generators (the
        // classic overload family) emits structurally equal routes behind
        // distinct Arcs; interning collapses them to one entry and one
        // shared allocation.
        let network = line_network(2);
        let dup: Vec<_> = (0..3)
            .map(|_| RoutePath::single_hop(LinkId(0)).shared())
            .collect();
        assert!(!Arc::ptr_eq(&dup[0], &dup[1]), "distinct Arcs on purpose");
        let setup = RoutingSetup::with_routes(network, dup);
        assert_eq!(setup.routes.len(), 3, "workload multiplicity preserved");
        assert_eq!(setup.table.len(), 1, "distinct routes deduplicated");
        assert!(Arc::ptr_eq(&setup.routes[0], &setup.routes[1]));
        assert!(Arc::ptr_eq(&setup.routes[1], &setup.routes[2]));
    }
}
