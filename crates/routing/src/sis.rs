//! **Shortest-In-System (SIS)** — the classic greedy contention-resolution
//! policy from adversarial queuing theory (Andrews et al. \[3\], discussed
//! in the paper's related work): every link, every slot, forwards the
//! queued packet that was injected *earliest*.
//!
//! SIS is universally stable on packet-routing networks (`W = identity`)
//! for every injection rate `λ < 1` — no frames, no global clock, no
//! knowledge of `λ`. It is the natural baseline for the frame protocol of
//! Section 4 in the routing special case: same stability region, but
//! per-packet latency `O(d)` slots instead of `O(d·T)` (the frame
//! protocol pays its generality with the frame length `T`).

use dps_core::feasibility::{Attempt, Feasibility};
use dps_core::ids::LinkId;
use dps_core::packet::{DeliveredPacket, Packet};
use dps_core::protocol::{Protocol, SlotOutcome};
use rand::RngCore;

/// A packet in flight under SIS.
#[derive(Clone, Debug)]
struct InFlight {
    packet: Packet,
    hop: usize,
}

/// The Shortest-In-System protocol over `num_links` links.
///
/// Implements [`Protocol`]; intended for per-link feasibility (packet
/// routing). Under interference-limited oracles it still runs, but no
/// stability guarantee applies — which experiment E11 uses to contrast
/// the substrate-agnostic frame protocol.
#[derive(Clone, Debug)]
pub struct SisProtocol {
    queues: Vec<Vec<InFlight>>,
    backlog: usize,
    // Reusable per-slot buffers keeping the step loop allocation-free in
    // steady state.
    chosen_scratch: Vec<(usize, usize)>,
    attempt_scratch: Vec<Attempt>,
    success_scratch: Vec<bool>,
}

impl SisProtocol {
    /// Creates the protocol.
    pub fn new(num_links: usize) -> Self {
        SisProtocol {
            queues: vec![Vec::new(); num_links],
            backlog: 0,
            chosen_scratch: Vec::new(),
            attempt_scratch: Vec::new(),
            success_scratch: Vec::new(),
        }
    }

    /// Queue length at `link`.
    pub fn queue_len(&self, link: LinkId) -> usize {
        self.queues[link.index()].len()
    }

    fn enqueue(&mut self, inflight: InFlight) {
        let link = inflight
            .packet
            .hop_link(inflight.hop)
            .expect("in-flight packet has a next hop");
        self.queues[link.index()].push(inflight);
        self.backlog += 1;
    }

    /// Index of the oldest-injected packet in the queue of `link`.
    fn oldest(&self, link_idx: usize) -> Option<usize> {
        self.queues[link_idx]
            .iter()
            .enumerate()
            .min_by_key(|(_, inf)| (inf.packet.injected_at(), inf.packet.id()))
            .map(|(i, _)| i)
    }
}

impl Protocol for SisProtocol {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        out.clear();
        for packet in arrivals {
            self.enqueue(InFlight {
                packet: packet.clone(),
                hop: 0,
            });
        }
        // Each non-empty link transmits its earliest-injected packet.
        self.chosen_scratch.clear();
        for link_idx in 0..self.queues.len() {
            if let Some(pos) = self.oldest(link_idx) {
                self.chosen_scratch.push((link_idx, pos));
            }
        }
        if self.chosen_scratch.is_empty() {
            return;
        }
        self.attempt_scratch.clear();
        {
            let queues = &self.queues;
            self.attempt_scratch
                .extend(self.chosen_scratch.iter().map(|&(link_idx, pos)| Attempt {
                    link: LinkId(link_idx as u32),
                    packet: queues[link_idx][pos].packet.id(),
                }));
        }
        out.attempts = self.attempt_scratch.len();
        phy.successes_into(&self.attempt_scratch, &mut self.success_scratch, rng);
        // Keep only winners, then remove them in descending position
        // order per queue so the stored positions stay valid.
        let mut keep = 0;
        for i in 0..self.chosen_scratch.len() {
            if self.success_scratch[i] {
                self.chosen_scratch[keep] = self.chosen_scratch[i];
                keep += 1;
            }
        }
        self.chosen_scratch.truncate(keep);
        self.chosen_scratch.sort_by(|a, b| b.cmp(a));
        let winners = std::mem::take(&mut self.chosen_scratch);
        for &(link_idx, pos) in &winners {
            out.successes += 1;
            let mut inflight = self.queues[link_idx].swap_remove(pos);
            self.backlog -= 1;
            inflight.hop += 1;
            if inflight.hop == inflight.packet.path_len() {
                out.delivered.push(DeliveredPacket {
                    id: inflight.packet.id(),
                    injected_at: inflight.packet.injected_at(),
                    delivered_at: slot,
                    path_len: inflight.packet.path_len(),
                });
            } else {
                self.enqueue(inflight);
            }
        }
        self.chosen_scratch = winners;
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::RoutingSetup;
    use dps_core::ids::PacketId;
    use dps_core::injection::stochastic::uniform_generators;
    use dps_core::injection::Injector;
    use dps_core::rng::split_stream;

    fn drive(setup: &RoutingSetup, lambda: f64, slots: u64, seed: u64) -> (SisProtocol, u64, u64) {
        let mut protocol = SisProtocol::new(setup.network.num_links());
        let mut injector = uniform_generators(setup.routes.clone(), 0.01)
            .unwrap()
            .scaled_to_rate(&setup.model, lambda)
            .unwrap();
        let mut rng = split_stream(seed, 0);
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for slot in 0..slots {
            let arrivals: Vec<Packet> = injector
                .inject(slot, &mut rng)
                .into_iter()
                .map(|p| {
                    let pkt = Packet::new(PacketId(next_id), p, slot);
                    next_id += 1;
                    pkt
                })
                .collect();
            injected += arrivals.len() as u64;
            delivered += protocol
                .on_slot(slot, arrivals, &setup.feasibility, &mut rng)
                .delivered
                .len() as u64;
        }
        (protocol, injected, delivered)
    }

    #[test]
    fn sis_is_stable_at_high_rate() {
        let setup = RoutingSetup::ring(6, 2).unwrap();
        let (protocol, injected, delivered) = drive(&setup, 0.9, 20_000, 1);
        assert!(injected > 0);
        assert_eq!(delivered + protocol.backlog() as u64, injected);
        assert!(
            protocol.backlog() < 200,
            "SIS backlog {} should stay bounded at λ = 0.9",
            protocol.backlog()
        );
    }

    #[test]
    fn sis_diverges_beyond_capacity() {
        let setup = RoutingSetup::ring(4, 2).unwrap();
        let (protocol, injected, _) = drive(&setup, 1.4, 20_000, 2);
        assert!(
            protocol.backlog() as f64 > 0.1 * injected as f64,
            "backlog {} of {injected}",
            protocol.backlog()
        );
    }

    #[test]
    fn sis_latency_is_near_path_length() {
        // At low load SIS delivers a d-hop packet in ≈ d slots — no frame
        // overhead.
        let setup = RoutingSetup::line(6, 3).unwrap();
        let mut protocol = SisProtocol::new(6);
        let mut rng = split_stream(3, 0);
        let path = setup.routes[0].clone();
        let pkt = Packet::new(PacketId(0), path, 0);
        let mut delivered_at = None;
        for slot in 0..20 {
            let arrivals = if slot == 0 {
                vec![pkt.clone()]
            } else {
                Vec::new()
            };
            let out = protocol.on_slot(slot, arrivals, &setup.feasibility, &mut rng);
            if let Some(d) = out.delivered.first() {
                delivered_at = Some(d.delivered_at);
                break;
            }
        }
        assert_eq!(delivered_at, Some(2), "3 hops from slot 0 finish at slot 2");
    }

    #[test]
    fn sis_prefers_older_packets() {
        let setup = RoutingSetup::line(2, 1).unwrap();
        let mut protocol = SisProtocol::new(2);
        let mut rng = split_stream(4, 0);
        let route = setup.routes[0].clone();
        // Two packets on the same link, the second "injected" earlier.
        let late = Packet::new(PacketId(0), route.clone(), 10);
        let early = Packet::new(PacketId(1), route, 5);
        let out = protocol.on_slot(20, vec![late, early], &setup.feasibility, &mut rng);
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].id, PacketId(1), "earliest-injected first");
    }
}
