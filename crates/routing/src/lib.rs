//! Packet-routing substrate for *Dynamic Packet Scheduling in Wireless
//! Networks* (Kesselheim, PODC 2012).
//!
//! Setting the interference matrix to the identity recovers the classic
//! store-and-forward packet-routing network: the measure of a load vector
//! is its congestion, each link forwards one packet per slot
//! ([`dps_core::feasibility::PerLinkFeasibility`]), and the trivial
//! per-link algorithm ([`dps_core::staticsched::greedy::GreedyPerLink`],
//! `f = 1`) plugged into the dynamic transformation yields stable
//! protocols for every injection rate `λ < 1` — the adversarial-queuing
//! baseline the paper recovers as a special case.
//!
//! This crate contributes the *workloads*: route generators over the
//! classic adversarial-queuing topologies (line, ring, grid) and helpers
//! that assemble complete experiment setups.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod sis;
pub mod workloads;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::sis::SisProtocol;
    pub use crate::workloads::{grid_row_column_routes, line_routes, ring_routes, RoutingSetup};
    pub use dps_core::feasibility::PerLinkFeasibility;
    pub use dps_core::interference::IdentityInterference;
    pub use dps_core::staticsched::greedy::GreedyPerLink;
}
