//! Property-based tests of the core model invariants.

use dps_core::error::ModelError;
use dps_core::feasibility::{PerLinkFeasibility, ThresholdFeasibility};
use dps_core::graph::{line_network, NetworkBuilder};
use dps_core::ids::{LinkId, PacketId};
use dps_core::interference::{
    validate, CompleteInterference, DenseInterference, IdentityInterference, InterferenceModel,
};
use dps_core::load::LinkLoad;
use dps_core::path::RoutePath;
use dps_core::rng::split_stream;
use dps_core::staticsched::uniform_rate::UniformRateScheduler;
use dps_core::staticsched::{requests_measure, run_static, Request, StaticScheduler};
use dps_core::transform::DenseTransform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Valid paths on a line are exactly the contiguous ranges.
    #[test]
    fn line_paths_validate_iff_contiguous(
        start in 0usize..6,
        len in 1usize..6,
        skip in 0usize..3,
    ) {
        let net = line_network(8);
        let mut links: Vec<LinkId> = (start..(start + len).min(8))
            .map(|i| LinkId(i as u32))
            .collect();
        let contiguous = RoutePath::new(&net, links.clone());
        prop_assert!(contiguous.is_ok());
        if skip > 0 && links.len() >= 2 {
            // Introduce a gap: must fail with DisconnectedPath.
            let last = links.len() - 1;
            let broken = LinkId((links[last].index() as u32 + 1 + skip as u32).min(7));
            if !net.adjacent(links[last - 1], broken) {
                links[last] = broken;
                let result = RoutePath::new(&net, links);
                let rejected = matches!(
                    result,
                    Err(ModelError::DisconnectedPath { .. }) | Err(ModelError::UnknownLink(_))
                );
                prop_assert!(rejected, "gap must be rejected: {result:?}");
            }
        }
    }

    /// LinkLoad arithmetic: merge then total equals sum of totals; scale is
    /// linear; support never reports zeros.
    #[test]
    fn load_arithmetic(
        a in proptest::collection::vec(0.0f64..10.0, 6),
        b in proptest::collection::vec(0.0f64..10.0, 6),
        factor in 0.0f64..5.0,
    ) {
        let mk = |v: &Vec<f64>| {
            let mut l = LinkLoad::new(6);
            for (i, &x) in v.iter().enumerate() {
                l.set(LinkId(i as u32), x);
            }
            l
        };
        let la = mk(&a);
        let lb = mk(&b);
        let mut merged = la.clone();
        merged.merge(&lb);
        prop_assert!((merged.total() - (la.total() + lb.total())).abs() < 1e-9);
        let mut scaled = la.clone();
        scaled.scale(factor);
        prop_assert!((scaled.total() - factor * la.total()).abs() < 1e-6);
        for (_, v) in scaled.support() {
            prop_assert!(v != 0.0);
        }
    }

    /// Random dense interference matrices constructed via `from_fn` always
    /// validate, and their measure is between congestion and total load.
    #[test]
    fn dense_measure_bounded_by_identity_and_complete(
        entries in proptest::collection::vec(0.0f64..1.0, 25),
        load_v in proptest::collection::vec(0.0f64..4.0, 5),
    ) {
        let m = 5;
        let dense = DenseInterference::from_fn(m, |on, from| {
            entries[on.index() * m + from.index()]
        });
        prop_assert!(validate(&dense).is_ok());
        let mut load = LinkLoad::new(m);
        for (i, &x) in load_v.iter().enumerate() {
            load.set(LinkId(i as u32), x);
        }
        let identity = IdentityInterference::new(m).measure(&load);
        let complete = CompleteInterference::new(m).measure(&load);
        let measured = dense.measure(&load);
        prop_assert!(measured + 1e-9 >= identity, "measure {measured} < congestion {identity}");
        prop_assert!(measured <= complete + 1e-9, "measure {measured} > total {complete}");
    }

    /// Threshold feasibility never lets two packets share a link, and on
    /// the identity model everything else succeeds.
    #[test]
    fn threshold_feasibility_identity_semantics(
        links in proptest::collection::vec(0u32..5, 1..12),
    ) {
        let attempts: Vec<_> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| dps_core::feasibility::Attempt {
                link: LinkId(l),
                packet: PacketId(i as u64),
            })
            .collect();
        let oracle = ThresholdFeasibility::new(IdentityInterference::new(5));
        let reference = PerLinkFeasibility::new(5);
        let mut rng1 = split_stream(1, 0);
        let mut rng2 = split_stream(1, 0);
        use dps_core::feasibility::Feasibility;
        prop_assert_eq!(
            oracle.successes(&attempts, &mut rng1),
            reference.successes(&attempts, &mut rng2)
        );
    }

    /// Algorithm 1 never serves a request twice and never exceeds its
    /// declared budget by more than the run loop allows.
    #[test]
    fn transform_serves_each_request_at_most_once(
        n in 1usize..60,
        seed in 0u64..50,
    ) {
        let m = 4;
        let requests: Vec<Request> = (0..n)
            .map(|i| Request {
                packet: PacketId(i as u64),
                link: LinkId((i % m) as u32),
            })
            .collect();
        let model = CompleteInterference::new(m);
        let i = requests_measure(&model, &requests);
        let transform = DenseTransform::new(UniformRateScheduler::new(), m).with_chi(6.0);
        let feas = ThresholdFeasibility::new(model);
        let mut rng = split_stream(seed, 5);
        let budget = transform.slots_needed(i, n);
        let result = run_static(&transform, &requests, i, &feas, budget, &mut rng);
        // served_at is Some exactly where served is true, and slots are
        // within the executed range.
        for (idx, served) in result.served.iter().enumerate() {
            prop_assert_eq!(result.served_at[idx].is_some(), *served);
            if let Some(slot) = result.served_at[idx] {
                prop_assert!(slot < result.slots_used);
            }
        }
    }

    /// Networks built from random link lists expose consistent adjacency.
    #[test]
    fn network_adjacency_is_consistent(edges in proptest::collection::vec((0u32..6, 0u32..6), 1..15)) {
        let mut b = NetworkBuilder::new();
        let nodes = b.add_nodes(6);
        for &(s, d) in &edges {
            b.add_link(nodes[s as usize], nodes[d as usize]);
        }
        let net = b.build();
        prop_assert_eq!(net.num_links(), edges.len());
        for node in net.node_ids() {
            for &l in net.outgoing(node) {
                prop_assert_eq!(net.link(l).src, node);
            }
            for &l in net.incoming(node) {
                prop_assert_eq!(net.link(l).dst, node);
            }
        }
        let out_total: usize = net.node_ids().map(|v| net.outgoing(v).len()).sum();
        prop_assert_eq!(out_total, edges.len());
    }

    /// The batch injection engine (skip-ahead calendar or dense binomial
    /// batch, selected from the totals) is distribution-equivalent to
    /// the naive per-generator sampler: over a long horizon both hit the
    /// analytic expected injection count, each generator fires at most
    /// once per slot, and the selected mode never changes the support.
    #[test]
    fn batch_injector_matches_naive_distribution(
        m in 1usize..24,
        p in 0.0005f64..0.9,
        seed in 0u64..64,
    ) {
        use dps_core::injection::batch::BatchStochasticInjector;
        use dps_core::injection::stochastic::uniform_generators;
        use dps_core::injection::Injector;

        let routes: Vec<_> = (0..m as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let naive = uniform_generators(routes, p).unwrap();
        let mut batch = BatchStochasticInjector::from(naive.clone());
        let mut naive = naive;

        // Scale the horizon so each generator expects ≥ ~40 injections.
        let slots = ((40.0 / p).ceil() as u64).clamp(2_000, 200_000);
        let expected = m as f64 * p * slots as f64;

        let mut rng_b = split_stream(seed, 0);
        let mut rng_n = split_stream(seed, 1);
        let mut buf = Vec::new();
        let (mut total_b, mut total_n) = (0u64, 0u64);
        for slot in 0..slots {
            batch.inject_into(slot, &mut rng_b, &mut buf);
            prop_assert!(buf.len() <= m, "more packets than generators");
            let mut seen = vec![false; m];
            for route in &buf {
                let g = route.hop(0).unwrap().index();
                prop_assert!(!seen[g], "generator {g} fired twice in slot {slot}");
                seen[g] = true;
            }
            total_b += buf.len() as u64;
            total_n += naive.inject(slot, &mut rng_n).len() as u64;
        }
        // Both samplers within 6 sigma of the analytic expectation
        // (binomial σ = √(N·p·(1−p)) per generator-slot trial).
        let sigma = (expected * (1.0 - p)).sqrt().max(1.0);
        let tol = 6.0 * sigma;
        prop_assert!(
            (total_b as f64 - expected).abs() < tol,
            "batch total {total_b} vs expected {expected} (tol {tol})"
        );
        prop_assert!(
            (total_n as f64 - expected).abs() < tol,
            "naive total {total_n} vs expected {expected} (tol {tol})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The zero-allocation `Protocol::step` path and the legacy
    /// owned-`Vec` `on_slot` shim are the same protocol: over random
    /// small scenarios (topology size, route length, rate, loss, seed)
    /// both must produce identical `SlotOutcome` streams, identical
    /// backlogs and identical potentials at every slot.
    #[test]
    fn step_and_on_slot_produce_identical_streams(
        num_links in 2usize..6,
        hops in 1usize..4,
        lambda in 0.1f64..0.8,
        loss in 0.0f64..0.6,
        seed in 0u64..512,
    ) {
        use dps_core::dynamic::{DynamicProtocol, FrameConfig};
        use dps_core::feasibility::LossyFeasibility;
        use dps_core::injection::stochastic::uniform_generators;
        use dps_core::injection::Injector;
        use dps_core::packet::Packet;
        use dps_core::protocol::{Protocol, SlotOutcome};
        use dps_core::staticsched::greedy::GreedyPerLink;

        let hops = hops.min(num_links);
        let network = line_network(num_links);
        let routes: Vec<_> = (0..=num_links - hops)
            .map(|start| {
                RoutePath::new(
                    &network,
                    (start..start + hops).map(|i| LinkId(i as u32)).collect(),
                )
                .unwrap()
                .shared()
            })
            .collect();
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.9).unwrap();
        let mut by_step = DynamicProtocol::new(GreedyPerLink::new(), config.clone(), num_links);
        let mut by_shim = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), loss);

        let mut injector_a = uniform_generators(routes.clone(), lambda / routes.len() as f64).unwrap();
        let mut injector_b = injector_a.clone();
        let mut rng_a = split_stream(seed, 0);
        let mut rng_b = split_stream(seed, 0);

        let slots = 200u64;
        let mut next_id = 0u64;
        let mut outcome = SlotOutcome::empty();
        for slot in 0..slots {
            let arrivals: Vec<Packet> = injector_a
                .inject(slot, &mut rng_a)
                .into_iter()
                .map(|path| {
                    let p = Packet::new(PacketId(next_id), path, slot);
                    next_id += 1;
                    p
                })
                .collect();
            // Same injection trace for the shim side, drawn from its own
            // (identically seeded) RNG so downstream draws stay aligned.
            let arrivals_b: Vec<Packet> = injector_b
                .inject(slot, &mut rng_b)
                .into_iter()
                .enumerate()
                .map(|(i, path)| Packet::new(PacketId(next_id - arrivals.len() as u64 + i as u64), path, slot))
                .collect();
            prop_assert_eq!(arrivals.len(), arrivals_b.len());

            by_step.step(slot, &arrivals, &phy, &mut rng_a, &mut outcome);
            let owned = by_shim.on_slot(slot, arrivals_b, &phy, &mut rng_b);

            prop_assert_eq!(&outcome.delivered, &owned.delivered, "slot {}", slot);
            prop_assert_eq!(outcome.attempts, owned.attempts, "slot {}", slot);
            prop_assert_eq!(outcome.successes, owned.successes, "slot {}", slot);
            prop_assert_eq!(by_step.backlog(), by_shim.backlog(), "slot {}", slot);
            prop_assert_eq!(by_step.potential(), by_shim.potential(), "slot {}", slot);
        }
        prop_assert_eq!(by_step.take_frame_events(), by_shim.take_frame_events());
    }
}
