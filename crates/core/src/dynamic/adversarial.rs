//! The Section 5 reduction from adversarial to stochastic injection.
//!
//! Each packet injected by a `(w, λ)`-bounded adversary is held at its
//! source for a uniformly random delay of `δ ∈ {0, …, δ_max − 1}` frames,
//! `δ_max = ⌈2(D + w)/ε⌉`, before being handed to the underlying protocol.
//! The random delays smooth any admissible adversarial burst into a
//! per-frame load whose expectation matches the stochastic analysis with
//! rate `λ' = (1 − ε/2)/f(m)` (the paper's Theorem 11), so stability and
//! the `O(D·w·T/ε)` latency bound carry over.

use crate::feasibility::Feasibility;
use crate::packet::Packet;
use crate::protocol::{Protocol, SlotOutcome};
use rand::{Rng, RngCore};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wraps a [`Protocol`] with the random initial delays of Section 5.
pub struct AdversarialWrapper<P> {
    inner: P,
    frame_len: usize,
    delay_max: u64,
    /// Min-heap of `(release_slot, sequence, packet)`.
    pending: BinaryHeap<Reverse<(u64, u64, PendingPacket)>>,
    sequence: u64,
    /// Reused per-slot buffer of packets released to the inner protocol.
    release_buf: Vec<Packet>,
}

/// Heap entry wrapper ordering only by the tuple prefix.
struct PendingPacket(Packet);

impl PartialEq for PendingPacket {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl Eq for PendingPacket {}
impl PartialOrd for PendingPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPacket {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<P: Protocol> AdversarialWrapper<P> {
    /// Wraps `inner`, delaying each packet by a uniform number of frames
    /// below `delay_max`. `frame_len` must match the inner protocol's `T`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len == 0` or `delay_max == 0` (use `delay_max = 1`
    /// for "no delay": a delay drawn from `{0}`).
    pub fn new(inner: P, frame_len: usize, delay_max: u64) -> Self {
        assert!(frame_len > 0, "frame length must be positive");
        assert!(delay_max > 0, "delay_max must be at least 1");
        AdversarialWrapper {
            inner,
            frame_len,
            delay_max,
            pending: BinaryHeap::new(),
            sequence: 0,
            release_buf: Vec::new(),
        }
    }

    /// The paper's delay horizon `δ_max = ⌈2(D + w)/ε⌉`.
    pub fn paper_delay_max(d: usize, w: usize, epsilon: f64) -> u64 {
        assert!(epsilon > 0.0, "epsilon must be positive");
        (2.0 * (d + w) as f64 / epsilon).ceil().max(1.0) as u64
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol (e.g. to drain frame events).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Packets still waiting out their initial delay.
    pub fn delayed_backlog(&self) -> usize {
        self.pending.len()
    }
}

impl<P: Protocol> Protocol for AdversarialWrapper<P> {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        let t = self.frame_len as u64;
        let current_frame = slot / t;
        self.release_buf.clear();
        for packet in arrivals {
            let delta = rng.gen_range(0..self.delay_max);
            if delta == 0 {
                self.release_buf.push(packet.clone());
            } else {
                // Release at the start of frame `current_frame + δ`; the
                // inner protocol then holds it until the *next* frame
                // begins, yielding the paper's "waits until the beginning
                // of the next time frame, then δ more frames".
                let release_slot = (current_frame + delta) * t;
                self.pending.push(Reverse((
                    release_slot,
                    self.sequence,
                    PendingPacket(packet.clone()),
                )));
                self.sequence += 1;
            }
        }
        while let Some(Reverse((release_slot, _, _))) = self.pending.peek() {
            if *release_slot > slot {
                break;
            }
            let Reverse((_, _, PendingPacket(packet))) =
                self.pending.pop().expect("peeked entry exists");
            self.release_buf.push(packet);
        }
        self.inner.step(slot, &self.release_buf, phy, rng, out)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog() + self.pending.len()
    }

    fn potential(&self) -> u64 {
        self.inner.potential()
    }

    fn check_invariants(&self) -> Result<(), crate::invariants::InvariantViolation> {
        self.inner.check_invariants()
    }

    /// The wrapper's own events are its pending releases; it draws RNG
    /// only per *arrival*, so slots without arrivals and without due
    /// releases are exactly as inert as the inner protocol says.
    fn next_event_slot(&self, now: u64) -> Option<u64> {
        let inner = self.inner.next_event_slot(now)?;
        Some(match self.pending.peek() {
            Some(Reverse((release_slot, _, _))) => {
                inner.min((*release_slot).max(now.saturating_add(1)))
            }
            None => inner,
        })
    }

    /// No releases are due in an inert gap (the hint stops at the next
    /// pending release), so only the inner protocol has bookkeeping to
    /// advance.
    fn skip_idle_slots(&mut self, from: u64, count: u64) {
        self.inner.skip_idle_slots(from, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{DynamicProtocol, FrameConfig};
    use crate::feasibility::PerLinkFeasibility;
    use crate::ids::{LinkId, PacketId};
    use crate::injection::adversarial::BurstyAdversary;
    use crate::injection::Injector;
    use crate::interference::IdentityInterference;
    use crate::path::RoutePath;
    use crate::rng::root_rng;
    use crate::staticsched::greedy::GreedyPerLink;

    #[test]
    fn paper_delay_horizon_formula() {
        assert_eq!(AdversarialWrapper::<Noop>::paper_delay_max(4, 16, 0.5), 80);
        assert_eq!(AdversarialWrapper::<Noop>::paper_delay_max(0, 1, 1.0), 2);
    }

    /// Trivial protocol that delivers instantly; used to observe releases.
    struct Noop {
        received: Vec<u64>,
        backlog: usize,
    }

    impl Protocol for Noop {
        fn step(
            &mut self,
            slot: u64,
            arrivals: &[Packet],
            _phy: &dyn Feasibility,
            _rng: &mut dyn RngCore,
            out: &mut SlotOutcome,
        ) {
            out.clear();
            for _ in arrivals {
                self.received.push(slot);
            }
        }

        fn backlog(&self) -> usize {
            self.backlog
        }
    }

    #[test]
    fn packets_release_at_frame_starts() {
        let inner = Noop {
            received: Vec::new(),
            backlog: 0,
        };
        let t = 10;
        let mut wrapper = AdversarialWrapper::new(inner, t, 8);
        let phy = PerLinkFeasibility::new(1);
        let mut rng = root_rng(42);
        let path = RoutePath::single_hop(LinkId(0)).shared();
        // Inject 50 packets at slot 3 (frame 0).
        let arrivals: Vec<Packet> = (0..50)
            .map(|i| Packet::new(PacketId(i), path.clone(), 3))
            .collect();
        wrapper.on_slot(3, arrivals, &phy, &mut rng);
        let immediately = wrapper.inner().received.len();
        assert!(
            wrapper.delayed_backlog() > 0,
            "some packets must be delayed"
        );
        assert_eq!(immediately + wrapper.delayed_backlog(), 50);
        // Drive through several frames; delayed packets appear only at
        // slots that are multiples of T.
        for slot in 4..200 {
            wrapper.on_slot(slot, Vec::new(), &phy, &mut rng);
        }
        assert_eq!(wrapper.inner().received.len(), 50);
        for &s in wrapper.inner().received.iter().skip(immediately) {
            assert_eq!(s % t as u64, 0, "release at slot {s} not a frame start");
        }
        assert_eq!(wrapper.delayed_backlog(), 0);
    }

    #[test]
    fn delays_are_spread_over_horizon() {
        let inner = Noop {
            received: Vec::new(),
            backlog: 0,
        };
        let t = 4;
        let delay_max = 16;
        let mut wrapper = AdversarialWrapper::new(inner, t, delay_max);
        let phy = PerLinkFeasibility::new(1);
        let mut rng = root_rng(17);
        let path = RoutePath::single_hop(LinkId(0)).shared();
        let arrivals: Vec<Packet> = (0..400)
            .map(|i| Packet::new(PacketId(i), path.clone(), 0))
            .collect();
        wrapper.on_slot(0, arrivals, &phy, &mut rng);
        for slot in 1..(delay_max + 2) * t as u64 {
            wrapper.on_slot(slot, Vec::new(), &phy, &mut rng);
        }
        let received = &wrapper.inner().received;
        assert_eq!(received.len(), 400);
        // Releases should span multiple distinct frames (smoothing).
        let mut frames: Vec<u64> = received.iter().map(|s| s / t as u64).collect();
        frames.sort_unstable();
        frames.dedup();
        assert!(
            frames.len() >= delay_max as usize / 2,
            "releases concentrated in {} frames",
            frames.len()
        );
    }

    #[test]
    fn adversarial_dynamic_protocol_stays_stable() {
        // Bursty (w, λ)-bounded adversary on a 2-link routing network,
        // smoothed by the wrapper, served by the frame protocol.
        let num_links = 2;
        let model = IdentityInterference::new(num_links);
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.9).unwrap();
        let t = config.frame_len;
        let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let mut wrapper = AdversarialWrapper::new(protocol, t, 8);
        let w = 32;
        let lambda = 0.5;
        let templates: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let mut adversary = BurstyAdversary::new(model, templates, w, lambda);
        let phy = PerLinkFeasibility::new(num_links);
        let mut rng = root_rng(23);
        let mut next_id = 0u64;
        let mut injected = 0usize;
        let mut delivered = 0usize;
        let slots = 60 * t as u64;
        for slot in 0..slots {
            let arrivals: Vec<Packet> = adversary
                .inject(slot, &mut rng)
                .into_iter()
                .map(|p| {
                    let pkt = Packet::new(PacketId(next_id), p, slot);
                    next_id += 1;
                    pkt
                })
                .collect();
            injected += arrivals.len();
            delivered += wrapper
                .on_slot(slot, arrivals, &phy, &mut rng)
                .delivered
                .len();
        }
        assert!(injected > 0);
        assert_eq!(delivered + wrapper.backlog(), injected, "conservation");
        assert!(
            wrapper.backlog() < 4 * w * num_links + 8 * t,
            "backlog {} looks unbounded",
            wrapper.backlog()
        );
    }
}
