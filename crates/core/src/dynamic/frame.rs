//! The frame protocol of Section 4.
//!
//! Every frame of `T` slots runs two phases:
//!
//! 1. **Main phase** (`T'` slots): the static algorithm `A(J, m·J)` is
//!    executed on the next hop of every packet that has never failed. A
//!    packet whose transmission is not acknowledged within the phase is
//!    *failed*: it moves into the failed buffer of the link it was trying
//!    to cross and never returns to the main phase.
//! 2. **Clean-up phase** (remaining slots): every link with a non-empty
//!    failed buffer selects, with probability `cleanup_select_prob`, its
//!    longest-failed packet; `A(cleanup_bound, m·J)` is executed on the
//!    selected set. Each success advances one failed packet by one hop
//!    (reducing the potential `Φ` by one).
//!
//! Stability (Theorems 3 and 8): for injection rates `λ < 1/f(m)` the
//! expected queue lengths are bounded and a packet with route length `d`
//! has expected latency `O(d·T)`.

use crate::dynamic::FrameConfig;
use crate::feasibility::{Attempt, Feasibility};
use crate::ids::{LinkId, PacketId};
use crate::packet::{DeliveredPacket, Packet};
use crate::protocol::{Protocol, SlotOutcome};
use crate::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::{Rng, RngCore};

/// A packet that has not failed: it advances one hop per frame.
#[derive(Clone, Debug)]
struct ActivePacket {
    packet: Packet,
    hop: usize,
}

/// A failed packet waiting in the buffer of its next-hop link.
#[derive(Clone, Debug)]
struct FailedPacket {
    packet: Packet,
    hop: usize,
    /// Frame in which the packet originally failed; clean-up selection
    /// picks the smallest (the paper's "failure is longest ago").
    failed_at: u64,
}

/// Per-frame summary, for observers such as the potential experiment (E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameEvent {
    /// Frame index (0-based).
    pub frame: u64,
    /// Un-failed packets that participated in the main phase.
    pub active_at_start: usize,
    /// Packets that failed during this frame's main phase.
    pub newly_failed: usize,
    /// Failed packets selected for the clean-up phase.
    pub cleanup_selected: usize,
    /// Clean-up transmissions that succeeded.
    pub cleanup_served: usize,
    /// Potential `Φ` after the frame.
    pub potential_after: u64,
}

/// The dynamic frame protocol (Section 4), generic over the static
/// algorithm it embeds.
///
/// Drive it through the [`Protocol`] trait; inspect progress through
/// [`DynamicProtocol::take_frame_events`], [`Protocol::backlog`] and
/// [`Protocol::potential`].
pub struct DynamicProtocol<S> {
    scheduler: S,
    config: FrameConfig,
    num_links: usize,

    /// Packets injected during the current frame; they join at the next
    /// frame start ("after injection a packet waits for the next time
    /// frame to begin").
    arrivals_buffer: Vec<Packet>,
    /// Un-failed packets currently travelling.
    active: Vec<ActivePacket>,
    /// Packets delivered during the current main phase that still occupy
    /// an `active` slot (removal is deferred to the clean-up rebuild to
    /// keep indices aligned with the running algorithm).
    delivered_in_active: usize,
    /// Per-link buffers of failed packets.
    failed: Vec<Vec<FailedPacket>>,
    failed_total: usize,
    potential: u64,

    slot_in_frame: usize,
    frame_index: u64,
    main_alg: Option<Box<dyn StaticAlgorithm>>,
    main_acked: Vec<bool>,
    cleanup_alg: Option<Box<dyn StaticAlgorithm>>,
    /// `(link, packet)` per clean-up request, index-aligned with the
    /// clean-up algorithm's request slice.
    cleanup_selected: Vec<(LinkId, PacketId)>,

    // Reusable buffers: the slot loop is the protocol's hot path, and
    // these keep it allocation-free in steady state (each buffer grows to
    // its high-water mark once and is then recycled every slot/frame).
    /// Rebuild target for `active` at the main→clean-up transition.
    active_scratch: Vec<ActivePacket>,
    /// Request slice handed to `StaticScheduler::instantiate`.
    request_scratch: Vec<Request>,
    /// Indices proposed by the running algorithm this slot.
    idx_scratch: Vec<usize>,
    /// Physical attempts of this slot.
    attempt_scratch: Vec<Attempt>,
    /// Per-attempt success flags of this slot.
    success_scratch: Vec<bool>,

    frame_events: Vec<FrameEvent>,
    current_event: FrameEvent,
    delivered_total: u64,
    injected_total: u64,
}

impl<S: StaticScheduler> DynamicProtocol<S> {
    /// Creates the protocol over a network with `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics if `config` is internally inconsistent (see
    /// [`FrameConfig::validate`]).
    pub fn new(scheduler: S, config: FrameConfig, num_links: usize) -> Self {
        config
            .validate()
            .expect("frame configuration must be consistent");
        DynamicProtocol {
            scheduler,
            num_links,
            arrivals_buffer: Vec::new(),
            active: Vec::new(),
            delivered_in_active: 0,
            failed: vec![Vec::new(); num_links],
            failed_total: 0,
            potential: 0,
            slot_in_frame: 0,
            frame_index: 0,
            main_alg: None,
            main_acked: Vec::new(),
            cleanup_alg: None,
            cleanup_selected: Vec::new(),
            active_scratch: Vec::new(),
            request_scratch: Vec::new(),
            idx_scratch: Vec::new(),
            attempt_scratch: Vec::new(),
            success_scratch: Vec::new(),
            frame_events: Vec::new(),
            current_event: FrameEvent {
                frame: 0,
                active_at_start: 0,
                newly_failed: 0,
                cleanup_selected: 0,
                cleanup_served: 0,
                potential_after: 0,
            },
            delivered_total: 0,
            injected_total: 0,
            config,
        }
    }

    /// The frame configuration.
    pub fn config(&self) -> &FrameConfig {
        &self.config
    }

    /// Drains the per-frame summaries collected since the last call.
    pub fn take_frame_events(&mut self) -> Vec<FrameEvent> {
        std::mem::take(&mut self.frame_events)
    }

    /// Total packets delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total packets injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_total
    }

    /// Number of failed packets currently buffered.
    pub fn failed_backlog(&self) -> usize {
        self.failed_total
    }

    fn begin_frame(&mut self, rng: &mut dyn RngCore) {
        // Arrivals of the previous frame join the travelling set.
        for packet in self.arrivals_buffer.drain(..) {
            self.active.push(ActivePacket { packet, hop: 0 });
        }
        self.current_event = FrameEvent {
            frame: self.frame_index,
            active_at_start: self.active.len(),
            newly_failed: 0,
            cleanup_selected: 0,
            cleanup_served: 0,
            potential_after: 0,
        };
        self.main_acked.clear();
        self.main_acked.resize(self.active.len(), false);
        self.main_alg = if self.active.is_empty() {
            None
        } else {
            self.request_scratch.clear();
            self.request_scratch.extend(self.active.iter().map(|ap| {
                Request {
                    packet: ap.packet.id(),
                    link: ap
                        .packet
                        .hop_link(ap.hop)
                        .expect("active packet always has a next hop"),
                }
            }));
            Some(
                self.scheduler
                    .instantiate(&self.request_scratch, self.config.j_bound, rng),
            )
        };
    }

    fn main_slot(
        &mut self,
        slot: u64,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        outcome: &mut SlotOutcome,
    ) {
        let Some(alg) = &mut self.main_alg else {
            return;
        };
        if alg.is_done() {
            return;
        }
        alg.attempts_into(rng, &mut self.idx_scratch);
        if self.idx_scratch.is_empty() {
            return;
        }
        self.attempt_scratch.clear();
        self.attempt_scratch
            .extend(self.idx_scratch.iter().map(|&i| {
                let ap = &self.active[i];
                Attempt {
                    link: ap.packet.hop_link(ap.hop).expect("hop in range"),
                    packet: ap.packet.id(),
                }
            }));
        outcome.attempts += self.attempt_scratch.len();
        phy.successes_into(&self.attempt_scratch, &mut self.success_scratch, rng);
        for (&idx, &ok) in self.idx_scratch.iter().zip(&self.success_scratch) {
            if !ok {
                continue;
            }
            outcome.successes += 1;
            alg.ack(idx);
            self.main_acked[idx] = true;
            let ap = &mut self.active[idx];
            ap.hop += 1;
            if ap.hop == ap.packet.path_len() {
                self.delivered_total += 1;
                self.delivered_in_active += 1;
                outcome.delivered.push(DeliveredPacket {
                    id: ap.packet.id(),
                    injected_at: ap.packet.injected_at(),
                    delivered_at: slot,
                    path_len: ap.packet.path_len(),
                });
            }
        }
    }

    /// Ends the main phase: unacknowledged packets fail; the clean-up set
    /// is selected and its algorithm instantiated.
    fn begin_cleanup(&mut self, rng: &mut dyn RngCore) {
        self.main_alg = None;
        self.delivered_in_active = 0;
        self.active_scratch.clear();
        for (idx, ap) in self.active.drain(..).enumerate() {
            if self.main_acked.get(idx).copied().unwrap_or(false) {
                if ap.hop < ap.packet.path_len() {
                    self.active_scratch.push(ap);
                }
                // Delivered packets were already reported; drop them.
            } else {
                let remaining = (ap.packet.path_len() - ap.hop) as u64;
                self.potential += remaining;
                self.failed_total += 1;
                self.current_event.newly_failed += 1;
                let link = ap.packet.hop_link(ap.hop).expect("hop in range");
                self.failed[link.index()].push(FailedPacket {
                    packet: ap.packet,
                    hop: ap.hop,
                    failed_at: self.frame_index,
                });
            }
        }
        std::mem::swap(&mut self.active, &mut self.active_scratch);

        // Random clean-up selection: each non-empty buffer contributes its
        // longest-failed packet with probability `cleanup_select_prob`.
        self.cleanup_selected.clear();
        self.request_scratch.clear();
        for link_idx in 0..self.num_links {
            if self.failed[link_idx].is_empty() {
                continue;
            }
            if rng.gen::<f64>() >= self.config.cleanup_select_prob {
                continue;
            }
            let oldest = self.failed[link_idx]
                .iter()
                .min_by_key(|fp| (fp.failed_at, fp.packet.id()))
                .expect("buffer non-empty");
            let link = LinkId(link_idx as u32);
            self.request_scratch.push(Request {
                packet: oldest.packet.id(),
                link,
            });
            self.cleanup_selected.push((link, oldest.packet.id()));
        }
        self.current_event.cleanup_selected = self.cleanup_selected.len();
        self.cleanup_alg = if self.request_scratch.is_empty() {
            None
        } else {
            Some(
                self.scheduler
                    .instantiate(&self.request_scratch, self.config.cleanup_bound, rng),
            )
        };
    }

    fn cleanup_slot(
        &mut self,
        slot: u64,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        outcome: &mut SlotOutcome,
    ) {
        let Some(alg) = &mut self.cleanup_alg else {
            return;
        };
        if alg.is_done() {
            return;
        }
        alg.attempts_into(rng, &mut self.idx_scratch);
        if self.idx_scratch.is_empty() {
            return;
        }
        self.attempt_scratch.clear();
        self.attempt_scratch
            .extend(self.idx_scratch.iter().map(|&i| {
                let (link, packet) = self.cleanup_selected[i];
                Attempt { link, packet }
            }));
        outcome.attempts += self.attempt_scratch.len();
        phy.successes_into(&self.attempt_scratch, &mut self.success_scratch, rng);
        for (&idx, &ok) in self.idx_scratch.iter().zip(&self.success_scratch) {
            if !ok {
                continue;
            }
            outcome.successes += 1;
            alg.ack(idx);
            self.current_event.cleanup_served += 1;
            let (link, packet_id) = self.cleanup_selected[idx];
            let buffer = &mut self.failed[link.index()];
            let pos = buffer
                .iter()
                .position(|fp| fp.packet.id() == packet_id)
                .expect("selected packet still buffered");
            let mut fp = buffer.swap_remove(pos);
            fp.hop += 1;
            self.potential -= 1;
            if fp.hop == fp.packet.path_len() {
                self.failed_total -= 1;
                self.delivered_total += 1;
                outcome.delivered.push(DeliveredPacket {
                    id: fp.packet.id(),
                    injected_at: fp.packet.injected_at(),
                    delivered_at: slot,
                    path_len: fp.packet.path_len(),
                });
            } else {
                let next = fp.packet.hop_link(fp.hop).expect("hop in range");
                self.failed[next.index()].push(fp);
            }
        }
    }

    fn end_frame(&mut self) {
        self.cleanup_alg = None;
        self.cleanup_selected.clear();
        self.current_event.potential_after = self.potential;
        self.frame_events.push(self.current_event);
        self.frame_index += 1;
    }
}

impl<S: StaticScheduler> Protocol for DynamicProtocol<S> {
    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome {
        let mut outcome = SlotOutcome::empty();
        if self.slot_in_frame == 0 {
            self.begin_frame(rng);
        }
        self.injected_total += arrivals.len() as u64;
        self.arrivals_buffer.extend(arrivals);

        let main = self.config.main_budget;
        let cleanup_end = main + self.config.cleanup_budget;
        if self.slot_in_frame < main {
            self.main_slot(slot, phy, rng, &mut outcome);
        } else {
            if self.slot_in_frame == main {
                self.begin_cleanup(rng);
            }
            if self.slot_in_frame < cleanup_end {
                self.cleanup_slot(slot, phy, rng, &mut outcome);
            }
            // Slots past the clean-up budget idle out the frame.
        }

        self.slot_in_frame += 1;
        if self.slot_in_frame == self.config.frame_len {
            self.end_frame();
            self.slot_in_frame = 0;
        }
        outcome
    }

    fn backlog(&self) -> usize {
        self.arrivals_buffer.len() + self.active.len() - self.delivered_in_active
            + self.failed_total
    }

    fn potential(&self) -> u64 {
        self.potential
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::PerLinkFeasibility;
    use crate::graph::line_network;
    use crate::injection::stochastic::uniform_generators;
    use crate::injection::Injector;
    use crate::path::RoutePath;
    use crate::rng::root_rng;
    use crate::staticsched::greedy::GreedyPerLink;

    /// Drives a protocol with an injector for `slots` slots.
    fn drive<P: Protocol, I: Injector>(
        protocol: &mut P,
        injector: &mut I,
        phy: &dyn Feasibility,
        slots: u64,
        seed: u64,
    ) -> (Vec<DeliveredPacket>, u64) {
        let mut rng = root_rng(seed);
        let mut delivered = Vec::new();
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut route_buf = Vec::new();
        for slot in 0..slots {
            injector.inject_into(slot, &mut rng, &mut route_buf);
            let arrivals: Vec<Packet> = route_buf
                .drain(..)
                .map(|path| {
                    let p = Packet::new(PacketId(next_id), path, slot);
                    next_id += 1;
                    p
                })
                .collect();
            injected += arrivals.len() as u64;
            let outcome = protocol.on_slot(slot, arrivals, phy, &mut rng);
            delivered.extend(outcome.delivered);
        }
        (delivered, injected)
    }

    fn routing_setup(
        num_links: usize,
        lambda: f64,
    ) -> (
        DynamicProtocol<GreedyPerLink>,
        crate::injection::stochastic::StochasticInjector,
        PerLinkFeasibility,
    ) {
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.9).unwrap();
        let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let injector = uniform_generators(routes, lambda).unwrap();
        (protocol, injector, PerLinkFeasibility::new(num_links))
    }

    #[test]
    fn stable_run_has_bounded_backlog_and_delivers() {
        let (mut protocol, mut injector, phy) = routing_setup(4, 0.5);
        let slots = 40 * protocol.config().frame_len as u64;
        let (delivered, injected) = drive(&mut protocol, &mut injector, &phy, slots, 7);
        assert!(injected > 0);
        // Up to ~2 frames of packets are legitimately still in flight
        // (waiting out the current frame); at rate 2 packets/slot that is
        // 4 × frame_len.
        let in_flight_allowance = 6 * protocol.config().frame_len as u64;
        assert!(
            delivered.len() as u64 >= injected.saturating_sub(in_flight_allowance),
            "delivered {} of {injected}",
            delivered.len()
        );
        // Conservation: everything is delivered or still in the system.
        assert_eq!(
            delivered.len() + protocol.backlog(),
            injected as usize,
            "packet conservation violated"
        );
        // Backlog stays around one frame's worth of injections.
        assert!(
            protocol.backlog() < 8 * protocol.config().frame_len,
            "backlog {} looks unbounded",
            protocol.backlog()
        );
    }

    #[test]
    fn single_hop_latency_is_a_constant_number_of_frames() {
        let (mut protocol, mut injector, phy) = routing_setup(2, 0.3);
        let t = protocol.config().frame_len as u64;
        let (delivered, _) = drive(&mut protocol, &mut injector, &phy, 30 * t, 13);
        assert!(!delivered.is_empty());
        let max_latency = delivered.iter().map(|d| d.latency()).max().unwrap();
        assert!(
            max_latency <= 3 * t,
            "single-hop latency {max_latency} exceeds 3 frames ({t} slots each)"
        );
    }

    #[test]
    fn multi_hop_packets_advance_one_hop_per_frame() {
        let num_links = 4;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.9).unwrap();
        let t = config.frame_len as u64;
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let injector = uniform_generators([full_path], 0.2).unwrap();
        let mut injector = injector;
        let phy = PerLinkFeasibility::new(num_links);
        let (delivered, _) = drive(&mut protocol, &mut injector, &phy, 40 * t, 21);
        assert!(!delivered.is_empty());
        for d in &delivered {
            assert_eq!(d.path_len, num_links);
            // d hops need d frames (plus the waiting frame).
            assert!(
                d.latency() <= (num_links as u64 + 2) * t,
                "latency {} too large for {num_links} hops",
                d.latency()
            );
        }
    }

    #[test]
    fn overload_grows_backlog() {
        // Config is built for rate 0.9 but we inject at 3x the per-link
        // capacity of the greedy algorithm: backlog must grow linearly.
        let num_links = 2;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.9).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        // Three generators all hammering link 0.
        let routes: Vec<_> = (0..3)
            .map(|_| RoutePath::single_hop(LinkId(0)).shared())
            .collect();
        let mut injector = uniform_generators(routes, 0.9).unwrap();
        let phy = PerLinkFeasibility::new(num_links);
        let slots = 30 * protocol.config().frame_len as u64;
        let (_, injected) = drive(&mut protocol, &mut injector, &phy, slots, 3);
        // Rate ~2.7 on a link that can serve 1 per slot at most: more than
        // half the injected packets must still be queued.
        assert!(
            protocol.backlog() as f64 > 0.4 * injected as f64,
            "backlog {} vs injected {injected}",
            protocol.backlog()
        );
    }

    #[test]
    fn frame_events_are_emitted_per_frame() {
        let (mut protocol, mut injector, phy) = routing_setup(2, 0.4);
        let t = protocol.config().frame_len as u64;
        let _ = drive(&mut protocol, &mut injector, &phy, 5 * t, 31);
        let events = protocol.take_frame_events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].frame, 0);
        assert_eq!(events[4].frame, 4);
        // Draining resets the buffer.
        assert!(protocol.take_frame_events().is_empty());
    }

    #[test]
    fn potential_is_zero_when_nothing_fails() {
        let (mut protocol, mut injector, phy) = routing_setup(3, 0.5);
        let t = protocol.config().frame_len as u64;
        let _ = drive(&mut protocol, &mut injector, &phy, 10 * t, 5);
        // Greedy per-link under per-link feasibility never fails a packet
        // as long as the frame's congestion stays within the main budget.
        assert_eq!(protocol.potential(), 0);
        assert_eq!(protocol.failed_backlog(), 0);
    }

    #[test]
    fn failed_multihop_packets_traverse_via_cleanup() {
        use crate::feasibility::LossyFeasibility;
        // Saturate the main phase (50% loss doubles the expected service
        // time per packet, pushing the per-frame demand past the main
        // budget) so failures are guaranteed; failed multi-hop packets must
        // still traverse hop by hop through clean-up phases. This test
        // checks the failure/clean-up *mechanics*, not stability.
        let num_links = 3;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.5);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let mut injector = uniform_generators([full_path], 0.5).unwrap();
        let t = protocol.config().frame_len as u64;
        let (delivered, injected) = drive(&mut protocol, &mut injector, &phy, 200 * t, 77);
        assert!(injected > 0);
        // The overloaded main phase must produce failures…
        let events = protocol.take_frame_events();
        let total_failed: usize = events.iter().map(|e| e.newly_failed).sum();
        assert!(total_failed > 0, "saturation must produce failures");
        // …and clean-up phases must have served some of them.
        let total_cleaned: usize = events.iter().map(|e| e.cleanup_served).sum();
        assert!(total_cleaned > 0, "cleanup must drain failed packets");
        // Conservation holds exactly even under loss + failures.
        assert_eq!(
            delivered.len() + protocol.backlog(),
            injected as usize,
            "conservation under loss"
        );
        // Every delivered packet crossed the full route.
        assert!(!delivered.is_empty());
        for d in &delivered {
            assert_eq!(d.path_len, num_links);
        }
    }

    #[test]
    fn potential_decrements_match_cleanup_successes() {
        use crate::feasibility::LossyFeasibility;
        let num_links = 2;
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.4);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let mut injector = uniform_generators(routes, 0.2).unwrap();
        let t = protocol.config().frame_len as u64;
        let _ = drive(&mut protocol, &mut injector, &phy, 200 * t, 9);
        // Σ over frames: potential_after(k) = potential_after(k-1)
        //   + hops-of-newly-failed − cleanup_served. For single-hop routes
        // newly_failed contributes exactly 1 hop each.
        let events = protocol.take_frame_events();
        let mut phi = 0i64;
        for e in &events {
            phi += e.newly_failed as i64;
            phi -= e.cleanup_served as i64;
            assert_eq!(
                phi as u64, e.potential_after,
                "potential bookkeeping diverged at frame {}",
                e.frame
            );
        }
    }

    #[test]
    #[should_panic(expected = "consistent")]
    fn rejects_inconsistent_config() {
        let mut config = FrameConfig::tuned(&GreedyPerLink::new(), 2, 0.5).unwrap();
        config.frame_len = 1;
        let _ = DynamicProtocol::new(GreedyPerLink::new(), config, 2);
    }
}

#[cfg(test)]
mod golden_trace {
    use super::tests_support_golden::golden_fingerprint;
    use super::FrameEvent;

    /// Fingerprint captured on the pre-buffer-reuse frame loop (the
    /// per-slot/per-frame `Vec`-allocating version). The refactor must
    /// not change a single decision: same seed → same `FrameEvent`
    /// stream and same delivered/failed trace, bit for bit.
    ///
    /// Re-pinned when the golden driver switched from the naive
    /// per-generator sampler to the batch injection engine
    /// (`BatchStochasticInjector`): skip-ahead sampling consumes one RNG
    /// draw per *injection* instead of one per generator per slot, so
    /// the same seed produces a different — equally valid — injection
    /// trace, and every downstream decision moves with it. The previous
    /// pin was `hash = 0x5a08_62e8_be39_c7fb`, `injected = 1788`,
    /// `delivered = 1397`.
    #[test]
    fn frame_event_stream_survives_buffer_reuse_refactor() {
        let (hash, events_head, delivered, injected) = golden_fingerprint();
        assert_eq!(injected, 1742, "injection trace diverged");
        assert_eq!(delivered, 1381, "delivered trace diverged");
        assert_eq!(
            events_head[2],
            FrameEvent {
                frame: 2,
                active_at_start: 54,
                newly_failed: 0,
                cleanup_selected: 0,
                cleanup_served: 0,
                potential_after: 0,
            }
        );
        assert_eq!(
            events_head[5],
            FrameEvent {
                frame: 5,
                active_at_start: 76,
                newly_failed: 11,
                cleanup_selected: 3,
                cleanup_served: 3,
                potential_after: 54,
            }
        );
        assert_eq!(hash, 0xf543_e521_3371_1729, "frame/delivery trace diverged");
    }
}

#[cfg(test)]
pub(crate) mod tests_support_golden {
    use super::*;
    use crate::feasibility::{LossyFeasibility, PerLinkFeasibility};
    use crate::graph::line_network;
    use crate::injection::batch::BatchStochasticInjector;
    use crate::injection::stochastic::uniform_generators;
    use crate::injection::Injector;
    use crate::path::RoutePath;
    use crate::rng::root_rng;
    use crate::staticsched::greedy::GreedyPerLink;

    /// Drives a lossy multi-hop workload with a fixed seed and folds the
    /// full FrameEvent stream plus the delivered-packet trace into an FNV
    /// fingerprint. Captured once before the buffer-reuse refactor and
    /// re-captured when the batch injection engine replaced the naive
    /// per-generator sampler on this path; the regression test asserts
    /// the exact same value after any further refactor.
    pub fn golden_fingerprint() -> (u64, Vec<FrameEvent>, usize, u64) {
        let num_links = 3;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.5);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let mut injector =
            BatchStochasticInjector::from(uniform_generators([full_path], 0.5).unwrap());
        let slots = 60 * protocol.config().frame_len as u64;
        let mut rng = root_rng(20120616);
        let mut delivered = Vec::new();
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut route_buf = Vec::new();
        for slot in 0..slots {
            injector.inject_into(slot, &mut rng, &mut route_buf);
            let arrivals: Vec<Packet> = route_buf
                .drain(..)
                .map(|path| {
                    let p = Packet::new(PacketId(next_id), path, slot);
                    next_id += 1;
                    p
                })
                .collect();
            injected += arrivals.len() as u64;
            let outcome = protocol.on_slot(slot, arrivals, &phy, &mut rng);
            delivered.extend(outcome.delivered);
        }
        let events = protocol.take_frame_events();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            hash = (hash ^ v).wrapping_mul(0x1000_0000_01b3);
        };
        for e in &events {
            fold(e.frame);
            fold(e.active_at_start as u64);
            fold(e.newly_failed as u64);
            fold(e.cleanup_selected as u64);
            fold(e.cleanup_served as u64);
            fold(e.potential_after);
        }
        for d in &delivered {
            fold(d.id.0);
            fold(d.injected_at);
            fold(d.delivered_at);
            fold(d.path_len as u64);
        }
        (
            hash,
            events.into_iter().take(6).collect(),
            delivered.len(),
            injected,
        )
    }
}
