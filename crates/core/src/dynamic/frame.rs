//! The frame protocol of Section 4.
//!
//! Every frame of `T` slots runs two phases:
//!
//! 1. **Main phase** (`T'` slots): the static algorithm `A(J, m·J)` is
//!    executed on the next hop of every packet that has never failed. A
//!    packet whose transmission is not acknowledged within the phase is
//!    *failed*: it moves into the failed buffer of the link it was trying
//!    to cross and never returns to the main phase.
//! 2. **Clean-up phase** (remaining slots): every link with a non-empty
//!    failed buffer selects, with probability `cleanup_select_prob`, its
//!    longest-failed packet; `A(cleanup_bound, m·J)` is executed on the
//!    selected set. Each success advances one failed packet by one hop
//!    (reducing the potential `Φ` by one).
//!
//! Stability (Theorems 3 and 8): for injection rates `λ < 1/f(m)` the
//! expected queue lengths are bounded and a packet with route length `d`
//! has expected latency `O(d·T)`.

use crate::dynamic::FrameConfig;
use crate::feasibility::{Attempt, Feasibility};
use crate::ids::{LinkId, PacketId};
use crate::invariants::InvariantViolation;
use crate::packet::{DeliveredPacket, Packet};
use crate::protocol::{InternedArrival, Protocol, SlotOutcome};
use crate::region::{ActiveLinkSet, RegionMap};
use crate::route_table::{RouteId, RouteTable};
use crate::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use crate::store::{PacketRef, PacketState, PacketStore};
use rand::{Rng, RngCore};

/// A failed packet waiting in the buffer of its next-hop link.
///
/// The packet itself lives in the protocol's [`PacketStore`]; this entry
/// is the buffer's four-byte handle plus the failure frame.
#[derive(Clone, Copy, Debug)]
struct FailedRef {
    pkt: PacketRef,
    /// Frame in which the packet originally failed; clean-up selection
    /// picks the smallest (the paper's "failure is longest ago").
    failed_at: u64,
}

/// Per-frame summary, for observers such as the potential experiment (E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameEvent {
    /// Frame index (0-based).
    pub frame: u64,
    /// Un-failed packets that participated in the main phase.
    pub active_at_start: usize,
    /// Packets that failed during this frame's main phase.
    pub newly_failed: usize,
    /// Failed packets selected for the clean-up phase.
    pub cleanup_selected: usize,
    /// Clean-up transmissions that succeeded.
    pub cleanup_served: usize,
    /// Potential `Φ` after the frame.
    pub potential_after: u64,
}

/// The dynamic frame protocol (Section 4), generic over the static
/// algorithm it embeds.
///
/// Drive it through the [`Protocol`] trait; inspect progress through
/// [`DynamicProtocol::take_frame_events`], [`Protocol::backlog`] and
/// [`Protocol::potential`].
pub struct DynamicProtocol<S> {
    scheduler: S,
    config: FrameConfig,

    /// Interned route dictionary: every distinct route the injectors
    /// emit, stored once, with hop links flattened for dense lookup.
    routes: RouteTable,
    /// Columnar storage of every packet currently in the system; the
    /// lists below hold [`PacketRef`] indices into it.
    store: PacketStore,

    /// Packets injected during the current frame; they join at the next
    /// frame start ("after injection a packet waits for the next time
    /// frame to begin").
    arrivals_buffer: Vec<PacketRef>,
    /// Un-failed packets currently travelling.
    active: Vec<PacketRef>,
    /// Packets delivered during the current main phase that still occupy
    /// an `active` slot (removal is deferred to the clean-up rebuild to
    /// keep indices aligned with the running algorithm).
    delivered_in_active: usize,
    /// Per-link buffers of failed packets.
    failed: Vec<Vec<FailedRef>>,
    /// Region-summarized occupancy of `failed`: exactly the links with a
    /// non-empty buffer. Clean-up selection iterates this set (ascending
    /// link order, empty regions skipped wholesale), so the per-frame
    /// scan costs `O(regions + occupied)` instead of `O(m)` — the same
    /// links in the same order as the historical full scan, hence the
    /// same RNG stream (pinned by the golden-fingerprint tests).
    failed_links: ActiveLinkSet,
    failed_total: usize,
    potential: u64,

    slot_in_frame: usize,
    frame_index: u64,
    main_alg: Option<Box<dyn StaticAlgorithm>>,
    main_acked: Vec<bool>,
    cleanup_alg: Option<Box<dyn StaticAlgorithm>>,
    /// `(link, packet)` per clean-up request, index-aligned with the
    /// clean-up algorithm's request slice.
    cleanup_selected: Vec<(LinkId, PacketRef)>,

    // Reusable buffers: the slot loop is the protocol's hot path, and
    // these keep it allocation-free in steady state (each buffer grows to
    // its high-water mark once and is then recycled every slot/frame).
    /// Rebuild target for `active` at the main→clean-up transition.
    active_scratch: Vec<PacketRef>,
    /// Request slice handed to `StaticScheduler::instantiate`.
    request_scratch: Vec<Request>,
    /// Indices proposed by the running algorithm this slot.
    idx_scratch: Vec<usize>,
    /// Physical attempts of this slot.
    attempt_scratch: Vec<Attempt>,
    /// Per-attempt success flags of this slot.
    success_scratch: Vec<bool>,
    /// Occupied failed-buffer links of the current clean-up selection.
    link_scratch: Vec<u32>,

    frame_events: Vec<FrameEvent>,
    current_event: FrameEvent,
    delivered_total: u64,
    injected_total: u64,
}

impl<S: StaticScheduler> DynamicProtocol<S> {
    /// Creates the protocol over a network with `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics if `config` is internally inconsistent (see
    /// [`FrameConfig::validate`]).
    pub fn new(scheduler: S, config: FrameConfig, num_links: usize) -> Self {
        config
            .validate()
            .expect("frame configuration must be consistent");
        DynamicProtocol {
            scheduler,
            routes: RouteTable::new(),
            store: PacketStore::new(),
            arrivals_buffer: Vec::new(),
            active: Vec::new(),
            delivered_in_active: 0,
            failed: vec![Vec::new(); num_links],
            failed_links: ActiveLinkSet::new(RegionMap::contiguous(
                num_links,
                RegionMap::default_regions(num_links),
            )),
            failed_total: 0,
            potential: 0,
            slot_in_frame: 0,
            frame_index: 0,
            main_alg: None,
            main_acked: Vec::new(),
            cleanup_alg: None,
            cleanup_selected: Vec::new(),
            active_scratch: Vec::new(),
            request_scratch: Vec::new(),
            idx_scratch: Vec::new(),
            attempt_scratch: Vec::new(),
            success_scratch: Vec::new(),
            link_scratch: Vec::new(),
            frame_events: Vec::new(),
            current_event: FrameEvent {
                frame: 0,
                active_at_start: 0,
                newly_failed: 0,
                cleanup_selected: 0,
                cleanup_served: 0,
                potential_after: 0,
            },
            delivered_total: 0,
            injected_total: 0,
            config,
        }
    }

    /// The frame configuration.
    pub fn config(&self) -> &FrameConfig {
        &self.config
    }

    /// Drains the per-frame summaries collected since the last call.
    pub fn take_frame_events(&mut self) -> Vec<FrameEvent> {
        std::mem::take(&mut self.frame_events)
    }

    /// Total packets delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total packets injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_total
    }

    /// Number of failed packets currently buffered.
    pub fn failed_backlog(&self) -> usize {
        self.failed_total
    }

    /// The protocol's interned route dictionary (one entry per distinct
    /// route ever injected).
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// Live slots in the columnar store: packets in the system *plus*
    /// any delivered mid-main-phase whose slots are reclaimed at the
    /// next main→clean-up rebuild — so this can transiently exceed
    /// [`Protocol::backlog`] by up to one frame's deliveries.
    pub fn stored_packets(&self) -> usize {
        self.store.live()
    }

    fn begin_frame(&mut self, rng: &mut dyn RngCore) {
        // Arrivals of the previous frame join the travelling set.
        for pkt in self.arrivals_buffer.drain(..) {
            self.store.set_state(pkt, PacketState::Active);
            self.active.push(pkt);
        }
        self.current_event = FrameEvent {
            frame: self.frame_index,
            active_at_start: self.active.len(),
            newly_failed: 0,
            cleanup_selected: 0,
            cleanup_served: 0,
            potential_after: 0,
        };
        self.main_acked.clear();
        self.main_acked.resize(self.active.len(), false);
        self.main_alg = if self.active.is_empty() {
            None
        } else {
            self.request_scratch.clear();
            let (routes, store) = (&self.routes, &self.store);
            self.request_scratch
                .extend(self.active.iter().map(|&pkt| Request {
                    packet: store.id(pkt),
                    link: routes.link_at(store.route(pkt), store.hop(pkt)),
                }));
            Some(
                self.scheduler
                    .instantiate(&self.request_scratch, self.config.j_bound, rng),
            )
        };
    }

    fn main_slot(
        &mut self,
        slot: u64,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        outcome: &mut SlotOutcome,
    ) {
        let Some(alg) = &mut self.main_alg else {
            return;
        };
        if alg.is_done() {
            return;
        }
        alg.attempts_into(rng, &mut self.idx_scratch);
        if self.idx_scratch.is_empty() {
            return;
        }
        self.attempt_scratch.clear();
        {
            let (routes, store, active) = (&self.routes, &self.store, &self.active);
            self.attempt_scratch
                .extend(self.idx_scratch.iter().map(|&i| {
                    let pkt = active[i];
                    Attempt {
                        link: routes.link_at(store.route(pkt), store.hop(pkt)),
                        packet: store.id(pkt),
                    }
                }));
        }
        outcome.attempts += self.attempt_scratch.len();
        phy.successes_into(&self.attempt_scratch, &mut self.success_scratch, rng);
        for (&idx, &ok) in self.idx_scratch.iter().zip(&self.success_scratch) {
            if !ok {
                continue;
            }
            outcome.successes += 1;
            alg.ack(idx);
            self.main_acked[idx] = true;
            let pkt = self.active[idx];
            let hop = self.store.advance(pkt);
            let path_len = self.routes.len_of(self.store.route(pkt));
            if hop == path_len {
                self.delivered_total += 1;
                self.delivered_in_active += 1;
                self.store.set_state(pkt, PacketState::Delivered);
                outcome.delivered.push(DeliveredPacket {
                    id: self.store.id(pkt),
                    injected_at: self.store.injected_at(pkt),
                    delivered_at: slot,
                    path_len,
                });
            }
        }
    }

    /// Ends the main phase: unacknowledged packets fail; the clean-up set
    /// is selected and its algorithm instantiated.
    fn begin_cleanup(&mut self, rng: &mut dyn RngCore) {
        self.main_alg = None;
        self.delivered_in_active = 0;
        self.active_scratch.clear();
        for (idx, pkt) in self.active.drain(..).enumerate() {
            if self.main_acked.get(idx).copied().unwrap_or(false) {
                let hop = self.store.hop(pkt);
                if hop < self.routes.len_of(self.store.route(pkt)) {
                    self.active_scratch.push(pkt);
                } else {
                    // Delivered packets were already reported; release
                    // their store slots.
                    self.store.free(pkt);
                }
            } else {
                let hop = self.store.hop(pkt);
                let route = self.store.route(pkt);
                let remaining = (self.routes.len_of(route) - hop) as u64;
                self.potential += remaining;
                self.failed_total += 1;
                self.current_event.newly_failed += 1;
                self.store.set_state(pkt, PacketState::Failed);
                let link = self.routes.link_at(route, hop);
                self.failed[link.index()].push(FailedRef {
                    pkt,
                    failed_at: self.frame_index,
                });
                self.failed_links.insert(link);
            }
        }
        std::mem::swap(&mut self.active, &mut self.active_scratch);

        // Random clean-up selection: each non-empty buffer contributes its
        // longest-failed packet with probability `cleanup_select_prob`.
        // `failed_links` yields exactly the non-empty buffers in ascending
        // link order, so the RNG draws match the historical full scan.
        self.cleanup_selected.clear();
        self.request_scratch.clear();
        self.link_scratch.clear();
        self.failed_links.collect_into(&mut self.link_scratch);
        for i in 0..self.link_scratch.len() {
            let link_idx = self.link_scratch[i] as usize;
            debug_assert!(!self.failed[link_idx].is_empty());
            if rng.gen::<f64>() >= self.config.cleanup_select_prob {
                continue;
            }
            let store = &self.store;
            let oldest = self.failed[link_idx]
                .iter()
                .min_by_key(|fr| (fr.failed_at, store.id(fr.pkt)))
                .expect("buffer non-empty");
            let link = LinkId(link_idx as u32);
            self.request_scratch.push(Request {
                packet: store.id(oldest.pkt),
                link,
            });
            self.cleanup_selected.push((link, oldest.pkt));
        }
        self.current_event.cleanup_selected = self.cleanup_selected.len();
        self.cleanup_alg = if self.request_scratch.is_empty() {
            None
        } else {
            Some(
                self.scheduler
                    .instantiate(&self.request_scratch, self.config.cleanup_bound, rng),
            )
        };
    }

    fn cleanup_slot(
        &mut self,
        slot: u64,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        outcome: &mut SlotOutcome,
    ) {
        let Some(alg) = &mut self.cleanup_alg else {
            return;
        };
        if alg.is_done() {
            return;
        }
        alg.attempts_into(rng, &mut self.idx_scratch);
        if self.idx_scratch.is_empty() {
            return;
        }
        self.attempt_scratch.clear();
        {
            let (store, selected) = (&self.store, &self.cleanup_selected);
            self.attempt_scratch
                .extend(self.idx_scratch.iter().map(|&i| {
                    let (link, pkt) = selected[i];
                    Attempt {
                        link,
                        packet: store.id(pkt),
                    }
                }));
        }
        outcome.attempts += self.attempt_scratch.len();
        phy.successes_into(&self.attempt_scratch, &mut self.success_scratch, rng);
        for (&idx, &ok) in self.idx_scratch.iter().zip(&self.success_scratch) {
            if !ok {
                continue;
            }
            outcome.successes += 1;
            alg.ack(idx);
            self.current_event.cleanup_served += 1;
            let (link, pkt) = self.cleanup_selected[idx];
            let buffer = &mut self.failed[link.index()];
            let pos = buffer
                .iter()
                .position(|fr| fr.pkt == pkt)
                .expect("selected packet still buffered");
            let fr = buffer.swap_remove(pos);
            if buffer.is_empty() {
                self.failed_links.remove(link);
            }
            let hop = self.store.advance(pkt);
            self.potential -= 1;
            let route = self.store.route(pkt);
            let path_len = self.routes.len_of(route);
            if hop == path_len {
                self.failed_total -= 1;
                self.delivered_total += 1;
                outcome.delivered.push(DeliveredPacket {
                    id: self.store.id(pkt),
                    injected_at: self.store.injected_at(pkt),
                    delivered_at: slot,
                    path_len,
                });
                self.store.free(pkt);
            } else {
                let next = self.routes.link_at(route, hop);
                self.failed[next.index()].push(fr);
                self.failed_links.insert(next);
            }
        }
    }

    fn end_frame(&mut self) {
        self.cleanup_alg = None;
        self.cleanup_selected.clear();
        self.current_event.potential_after = self.potential;
        self.frame_events.push(self.current_event);
        self.frame_index += 1;
    }

    /// Admits one arrival into the current frame's waiting buffer; the
    /// route must already be interned in this protocol's table.
    fn admit(&mut self, id: PacketId, route: RouteId, injected_at: u64) {
        self.injected_total += 1;
        let pkt = self.store.insert(id, route, injected_at);
        self.arrivals_buffer.push(pkt);
    }

    /// The phase body shared by [`Protocol::step`] and
    /// [`Protocol::step_interned`]: runs this slot's phase, then
    /// advances the in-frame cursor (closing the frame when it wraps).
    fn run_slot(
        &mut self,
        slot: u64,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        let main = self.config.main_budget;
        let cleanup_end = main + self.config.cleanup_budget;
        if self.slot_in_frame < main {
            self.main_slot(slot, phy, rng, out);
        } else {
            if self.slot_in_frame == main {
                self.begin_cleanup(rng);
            }
            if self.slot_in_frame < cleanup_end {
                self.cleanup_slot(slot, phy, rng, out);
            }
            // Slots past the clean-up budget idle out the frame.
        }

        self.slot_in_frame += 1;
        if self.slot_in_frame == self.config.frame_len {
            self.end_frame();
            self.slot_in_frame = 0;
            // Frame-boundary invariant guard: catches a breach within one
            // frame of its cause even when the caller never checks.
            #[cfg(feature = "check-invariants")]
            if let Err(violation) = self.check_invariants() {
                panic!(
                    "frame {} closed in a broken state: {violation}",
                    self.frame_index - 1
                );
            }
        }
    }
}

impl<S: StaticScheduler> Protocol for DynamicProtocol<S> {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        out.clear();
        if self.slot_in_frame == 0 {
            self.begin_frame(rng);
        }
        for packet in arrivals {
            let route = self.routes.intern(packet.path());
            self.admit(packet.id(), route, packet.injected_at());
        }
        self.run_slot(slot, phy, rng, out);
    }

    fn backlog(&self) -> usize {
        self.arrivals_buffer.len() + self.active.len() - self.delivered_in_active
            + self.failed_total
    }

    fn potential(&self) -> u64 {
        self.potential
    }

    /// The frame protocol's quiescence structure: with both embedded
    /// algorithms finished (or absent), the only observable slots ahead
    /// are the next clean-up selection (when anything is active or
    /// failed) and the next frame start (when anything is waiting or
    /// active). With the system fully drained, `u64::MAX`: every slot
    /// is an inert frame-bookkeeping tick that
    /// [`skip_idle_slots`](Protocol::skip_idle_slots) replays in bulk.
    fn next_event_slot(&self, now: u64) -> Option<u64> {
        let main_pending = self.main_alg.as_ref().is_some_and(|a| !a.is_done());
        let cleanup_pending = self.cleanup_alg.as_ref().is_some_and(|a| !a.is_done());
        if main_pending || cleanup_pending {
            return Some(now.saturating_add(1));
        }
        let t = self.config.frame_len as u64;
        let main = self.config.main_budget as u64;
        // `slot_in_frame` was already advanced past the slot just
        // stepped, so it is the in-frame index of slot `now + 1`.
        let sif = self.slot_in_frame as u64;
        let next_frame_start = now.saturating_add(1).saturating_add((t - sif) % t);
        let next_cleanup_begin = if sif <= main {
            now.saturating_add(1).saturating_add(main - sif)
        } else {
            next_frame_start.saturating_add(main)
        };
        let mut next = u64::MAX;
        if !self.arrivals_buffer.is_empty() || !self.active.is_empty() {
            // A frame start merges arrivals into the travelling set and
            // instantiates the main algorithm.
            next = next.min(next_frame_start);
        }
        if !self.active.is_empty() || self.failed_total > 0 {
            // A clean-up selection draws RNG per non-empty failed
            // buffer and rebuilds the active set.
            next = next.min(next_cleanup_begin);
        }
        Some(next)
    }

    /// Replays the frame bookkeeping of `count` inert slots: advances
    /// the in-frame cursor, and at each frame boundary crossed performs
    /// the (empty-system) `begin_frame`/`end_frame` pair — emitting the
    /// same all-idle [`FrameEvent`]s the per-slot path would have, with
    /// no RNG consumed.
    fn skip_idle_slots(&mut self, _from: u64, count: u64) {
        let t = self.config.frame_len;
        let mut remaining = count;
        while remaining > 0 {
            if self.slot_in_frame == 0 {
                // An inert frame start: `next_event_slot` only lets the
                // skip cross a frame boundary when nothing is waiting
                // or travelling, so this replicates `begin_frame` on an
                // empty system.
                debug_assert!(
                    self.arrivals_buffer.is_empty() && self.active.is_empty(),
                    "skip crossed a frame start with live packets"
                );
                self.current_event = FrameEvent {
                    frame: self.frame_index,
                    active_at_start: 0,
                    newly_failed: 0,
                    cleanup_selected: 0,
                    cleanup_served: 0,
                    potential_after: 0,
                };
                self.main_acked.clear();
                self.main_alg = None;
            }
            let step = remaining.min((t - self.slot_in_frame) as u64);
            self.slot_in_frame += step as usize;
            remaining -= step;
            if self.slot_in_frame == t {
                self.end_frame();
                self.slot_in_frame = 0;
            }
        }
    }

    fn route_interner(&mut self) -> Option<&mut RouteTable> {
        Some(&mut self.routes)
    }

    /// Verifies the bookkeeping identities the stability proof rests on:
    /// packet conservation (injected = delivered + backlog), potential
    /// `Φ` = total remaining hops of failed packets (Section 4), the
    /// per-link failed-buffer structure, lifecycle-state agreement
    /// between the store and the protocol's lists, and the shared
    /// store/route-table invariants of [`crate::invariants`].
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        crate::invariants::check_route_table(&self.routes)?;
        // Live slots = waiting ∪ travelling ∪ failed. Delivered packets
        // keep their `active` slot until the main→clean-up rebuild, so
        // they are still "live" from the store's point of view.
        let live = self
            .arrivals_buffer
            .iter()
            .chain(self.active.iter())
            .chain(self.failed.iter().flatten().map(|fr| &fr.pkt))
            .copied();
        crate::invariants::check_store_partition(&self.store, live)?;

        for &pkt in &self.arrivals_buffer {
            if self.store.state(pkt) != PacketState::Queued {
                return Err(InvariantViolation::new(
                    "state-tags",
                    format!(
                        "waiting packet {:?} tagged {:?}, expected Queued",
                        self.store.id(pkt),
                        self.store.state(pkt)
                    ),
                ));
            }
        }
        let mut delivered_in_active = 0usize;
        for &pkt in &self.active {
            let hop = self.store.hop(pkt);
            let len = self.routes.len_of(self.store.route(pkt));
            match self.store.state(pkt) {
                PacketState::Active if hop < len => {}
                PacketState::Delivered if hop == len => delivered_in_active += 1,
                state => {
                    return Err(InvariantViolation::new(
                        "state-tags",
                        format!(
                            "active-list packet {:?} tagged {state:?} at hop {hop} of {len}",
                            self.store.id(pkt)
                        ),
                    ));
                }
            }
        }
        if delivered_in_active != self.delivered_in_active {
            return Err(InvariantViolation::new(
                "state-tags",
                format!(
                    "{delivered_in_active} Delivered tags in the active list but \
                     delivered_in_active = {}",
                    self.delivered_in_active
                ),
            ));
        }

        let mut failed_count = 0usize;
        let mut remaining_hops = 0u64;
        let mut occupied_buffers = 0usize;
        for (link_idx, buffer) in self.failed.iter().enumerate() {
            let tracked = self.failed_links.contains(LinkId(link_idx as u32));
            if tracked == buffer.is_empty() {
                return Err(InvariantViolation::new(
                    "failed-buffers",
                    format!(
                        "link {link_idx}: buffer len {} but failed_links tracks it as {}",
                        buffer.len(),
                        if tracked { "occupied" } else { "empty" }
                    ),
                ));
            }
            if !buffer.is_empty() {
                occupied_buffers += 1;
            }
            for fr in buffer {
                failed_count += 1;
                if self.store.state(fr.pkt) != PacketState::Failed {
                    return Err(InvariantViolation::new(
                        "state-tags",
                        format!(
                            "buffered packet {:?} tagged {:?}, expected Failed",
                            self.store.id(fr.pkt),
                            self.store.state(fr.pkt)
                        ),
                    ));
                }
                let route = self.store.route(fr.pkt);
                let hop = self.store.hop(fr.pkt);
                let len = self.routes.len_of(route);
                if hop >= len {
                    return Err(InvariantViolation::new(
                        "failed-buffers",
                        format!(
                            "failed packet {:?} at hop {hop} of a {len}-link route",
                            self.store.id(fr.pkt)
                        ),
                    ));
                }
                let next = self.routes.link_at(route, hop);
                if next.index() != link_idx {
                    return Err(InvariantViolation::new(
                        "failed-buffers",
                        format!(
                            "packet {:?} buffered under link {link_idx} but its next hop is {next}",
                            self.store.id(fr.pkt)
                        ),
                    ));
                }
                remaining_hops += (len - hop) as u64;
            }
        }
        if self.failed_links.len() != occupied_buffers {
            return Err(InvariantViolation::new(
                "failed-buffers",
                format!(
                    "failed_links tracks {} links but {occupied_buffers} buffers are occupied",
                    self.failed_links.len()
                ),
            ));
        }
        if failed_count != self.failed_total {
            return Err(InvariantViolation::new(
                "failed-accounting",
                format!(
                    "failed buffers hold {failed_count} packets but failed_total = {}",
                    self.failed_total
                ),
            ));
        }
        if remaining_hops != self.potential {
            return Err(InvariantViolation::new(
                "potential-accounting",
                format!(
                    "Φ = {} but failed packets have {remaining_hops} remaining hops",
                    self.potential
                ),
            ));
        }

        if self.injected_total != self.delivered_total + self.backlog() as u64 {
            return Err(InvariantViolation::new(
                "packet-conservation",
                format!(
                    "injected {} ≠ delivered {} + backlog {}",
                    self.injected_total,
                    self.delivered_total,
                    self.backlog()
                ),
            ));
        }

        if self.slot_in_frame >= self.config.frame_len {
            return Err(InvariantViolation::new(
                "frame-cursor",
                format!(
                    "slot_in_frame {} out of range (frame length {})",
                    self.slot_in_frame, self.config.frame_len
                ),
            ));
        }
        if self.main_alg.is_some() && self.main_acked.len() != self.active.len() {
            return Err(InvariantViolation::new(
                "main-ack-alignment",
                format!(
                    "{} ack flags for {} active packets",
                    self.main_acked.len(),
                    self.active.len()
                ),
            ));
        }
        Ok(())
    }

    fn step_interned(
        &mut self,
        slot: u64,
        arrivals: &[InternedArrival],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        out.clear();
        if self.slot_in_frame == 0 {
            self.begin_frame(rng);
        }
        for a in arrivals {
            self.admit(a.id, a.route, a.injected_at);
        }
        self.run_slot(slot, phy, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::PerLinkFeasibility;
    use crate::graph::line_network;
    use crate::ids::PacketId;
    use crate::injection::stochastic::uniform_generators;
    use crate::injection::Injector;
    use crate::path::RoutePath;
    use crate::rng::root_rng;
    use crate::staticsched::greedy::GreedyPerLink;

    /// Drives a protocol with an injector for `slots` slots, through the
    /// zero-allocation [`Protocol::step`] path with reused buffers.
    fn drive<P: Protocol, I: Injector>(
        protocol: &mut P,
        injector: &mut I,
        phy: &dyn Feasibility,
        slots: u64,
        seed: u64,
    ) -> (Vec<DeliveredPacket>, u64) {
        let mut rng = root_rng(seed);
        let mut delivered = Vec::new();
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut route_buf = Vec::new();
        let mut arrivals: Vec<Packet> = Vec::new();
        let mut outcome = SlotOutcome::empty();
        for slot in 0..slots {
            injector.inject_into(slot, &mut rng, &mut route_buf);
            arrivals.clear();
            arrivals.extend(route_buf.drain(..).map(|path| {
                let p = Packet::new(PacketId(next_id), path, slot);
                next_id += 1;
                p
            }));
            injected += arrivals.len() as u64;
            protocol.step(slot, &arrivals, phy, &mut rng, &mut outcome);
            delivered.extend_from_slice(&outcome.delivered);
        }
        (delivered, injected)
    }

    fn routing_setup(
        num_links: usize,
        lambda: f64,
    ) -> (
        DynamicProtocol<GreedyPerLink>,
        crate::injection::stochastic::StochasticInjector,
        PerLinkFeasibility,
    ) {
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.9).unwrap();
        let protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let injector = uniform_generators(routes, lambda).unwrap();
        (protocol, injector, PerLinkFeasibility::new(num_links))
    }

    #[test]
    fn stable_run_has_bounded_backlog_and_delivers() {
        let (mut protocol, mut injector, phy) = routing_setup(4, 0.5);
        let slots = 40 * protocol.config().frame_len as u64;
        let (delivered, injected) = drive(&mut protocol, &mut injector, &phy, slots, 7);
        assert!(injected > 0);
        // Up to ~2 frames of packets are legitimately still in flight
        // (waiting out the current frame); at rate 2 packets/slot that is
        // 4 × frame_len.
        let in_flight_allowance = 6 * protocol.config().frame_len as u64;
        assert!(
            delivered.len() as u64 >= injected.saturating_sub(in_flight_allowance),
            "delivered {} of {injected}",
            delivered.len()
        );
        // Conservation: everything is delivered or still in the system.
        assert_eq!(
            delivered.len() + protocol.backlog(),
            injected as usize,
            "packet conservation violated"
        );
        // Backlog stays around one frame's worth of injections.
        assert!(
            protocol.backlog() < 8 * protocol.config().frame_len,
            "backlog {} looks unbounded",
            protocol.backlog()
        );
    }

    #[test]
    fn single_hop_latency_is_a_constant_number_of_frames() {
        let (mut protocol, mut injector, phy) = routing_setup(2, 0.3);
        let t = protocol.config().frame_len as u64;
        let (delivered, _) = drive(&mut protocol, &mut injector, &phy, 30 * t, 13);
        assert!(!delivered.is_empty());
        let max_latency = delivered.iter().map(|d| d.latency()).max().unwrap();
        assert!(
            max_latency <= 3 * t,
            "single-hop latency {max_latency} exceeds 3 frames ({t} slots each)"
        );
    }

    #[test]
    fn multi_hop_packets_advance_one_hop_per_frame() {
        let num_links = 4;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.9).unwrap();
        let t = config.frame_len as u64;
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let injector = uniform_generators([full_path], 0.2).unwrap();
        let mut injector = injector;
        let phy = PerLinkFeasibility::new(num_links);
        let (delivered, _) = drive(&mut protocol, &mut injector, &phy, 40 * t, 21);
        assert!(!delivered.is_empty());
        for d in &delivered {
            assert_eq!(d.path_len, num_links);
            // d hops need d frames (plus the waiting frame).
            assert!(
                d.latency() <= (num_links as u64 + 2) * t,
                "latency {} too large for {num_links} hops",
                d.latency()
            );
        }
    }

    #[test]
    fn overload_grows_backlog() {
        // Config is built for rate 0.9 but we inject at 3x the per-link
        // capacity of the greedy algorithm: backlog must grow linearly.
        let num_links = 2;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.9).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        // Three generators all hammering link 0.
        let routes: Vec<_> = (0..3)
            .map(|_| RoutePath::single_hop(LinkId(0)).shared())
            .collect();
        let mut injector = uniform_generators(routes, 0.9).unwrap();
        let phy = PerLinkFeasibility::new(num_links);
        let slots = 30 * protocol.config().frame_len as u64;
        let (_, injected) = drive(&mut protocol, &mut injector, &phy, slots, 3);
        // Rate ~2.7 on a link that can serve 1 per slot at most: more than
        // half the injected packets must still be queued.
        assert!(
            protocol.backlog() as f64 > 0.4 * injected as f64,
            "backlog {} vs injected {injected}",
            protocol.backlog()
        );
    }

    #[test]
    fn frame_events_are_emitted_per_frame() {
        let (mut protocol, mut injector, phy) = routing_setup(2, 0.4);
        let t = protocol.config().frame_len as u64;
        let _ = drive(&mut protocol, &mut injector, &phy, 5 * t, 31);
        let events = protocol.take_frame_events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].frame, 0);
        assert_eq!(events[4].frame, 4);
        // Draining resets the buffer.
        assert!(protocol.take_frame_events().is_empty());
    }

    #[test]
    fn potential_is_zero_when_nothing_fails() {
        let (mut protocol, mut injector, phy) = routing_setup(3, 0.5);
        let t = protocol.config().frame_len as u64;
        let _ = drive(&mut protocol, &mut injector, &phy, 10 * t, 5);
        // Greedy per-link under per-link feasibility never fails a packet
        // as long as the frame's congestion stays within the main budget.
        assert_eq!(protocol.potential(), 0);
        assert_eq!(protocol.failed_backlog(), 0);
    }

    #[test]
    fn failed_multihop_packets_traverse_via_cleanup() {
        use crate::feasibility::LossyFeasibility;
        // Saturate the main phase (50% loss doubles the expected service
        // time per packet, pushing the per-frame demand past the main
        // budget) so failures are guaranteed; failed multi-hop packets must
        // still traverse hop by hop through clean-up phases. This test
        // checks the failure/clean-up *mechanics*, not stability.
        let num_links = 3;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.5);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let mut injector = uniform_generators([full_path], 0.5).unwrap();
        let t = protocol.config().frame_len as u64;
        let (delivered, injected) = drive(&mut protocol, &mut injector, &phy, 200 * t, 77);
        assert!(injected > 0);
        // The overloaded main phase must produce failures…
        let events = protocol.take_frame_events();
        let total_failed: usize = events.iter().map(|e| e.newly_failed).sum();
        assert!(total_failed > 0, "saturation must produce failures");
        // …and clean-up phases must have served some of them.
        let total_cleaned: usize = events.iter().map(|e| e.cleanup_served).sum();
        assert!(total_cleaned > 0, "cleanup must drain failed packets");
        // Conservation holds exactly even under loss + failures.
        assert_eq!(
            delivered.len() + protocol.backlog(),
            injected as usize,
            "conservation under loss"
        );
        // Every delivered packet crossed the full route.
        assert!(!delivered.is_empty());
        for d in &delivered {
            assert_eq!(d.path_len, num_links);
        }
    }

    #[test]
    fn potential_decrements_match_cleanup_successes() {
        use crate::feasibility::LossyFeasibility;
        let num_links = 2;
        let config = FrameConfig::tuned(&GreedyPerLink::new(), num_links, 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.4);
        let routes: Vec<_> = (0..num_links as u32)
            .map(|l| RoutePath::single_hop(LinkId(l)).shared())
            .collect();
        let mut injector = uniform_generators(routes, 0.2).unwrap();
        let t = protocol.config().frame_len as u64;
        let _ = drive(&mut protocol, &mut injector, &phy, 200 * t, 9);
        // Σ over frames: potential_after(k) = potential_after(k-1)
        //   + hops-of-newly-failed − cleanup_served. For single-hop routes
        // newly_failed contributes exactly 1 hop each.
        let events = protocol.take_frame_events();
        let mut phi = 0i64;
        for e in &events {
            phi += e.newly_failed as i64;
            phi -= e.cleanup_served as i64;
            assert_eq!(
                phi as u64, e.potential_after,
                "potential bookkeeping diverged at frame {}",
                e.frame
            );
        }
    }

    #[test]
    #[should_panic(expected = "consistent")]
    fn rejects_inconsistent_config() {
        let mut config = FrameConfig::tuned(&GreedyPerLink::new(), 2, 0.5).unwrap();
        config.frame_len = 1;
        let _ = DynamicProtocol::new(GreedyPerLink::new(), config, 2);
    }

    /// Hand-built frame geometry small enough to reason about slot by
    /// slot: 2 main slots, 1 clean-up slot, 4-slot frames.
    fn tiny_config(cleanup_select_prob: f64) -> FrameConfig {
        FrameConfig {
            m: 2,
            lambda: 0.5,
            epsilon: 0.5,
            frame_len: 4,
            j_bound: 4.0,
            main_budget: 2,
            cleanup_budget: 1,
            cleanup_select_prob,
            cleanup_bound: 1.0,
        }
    }

    /// Deterministic oracle failing every attempt of the first
    /// `fail_calls` slots that issue attempts, succeeding afterwards;
    /// consumes no randomness.
    struct FailFirstCalls {
        remaining: std::cell::Cell<usize>,
    }

    impl FailFirstCalls {
        fn new(fail_calls: usize) -> Self {
            FailFirstCalls {
                remaining: std::cell::Cell::new(fail_calls),
            }
        }
    }

    impl Feasibility for FailFirstCalls {
        fn successes(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
            let left = self.remaining.get();
            if left > 0 {
                self.remaining.set(left - 1);
                vec![false; attempts.len()]
            } else {
                vec![true; attempts.len()]
            }
        }
    }

    /// A packet delivered in the *final* main-phase slot still occupies
    /// an `active` index when the main→clean-up rebuild runs; it must be
    /// dropped there — not re-selected, not double-counted, its store
    /// slot released.
    #[test]
    fn delivery_in_final_main_slot_is_not_double_counted() {
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), tiny_config(1.0), 2);
        let phy = PerLinkFeasibility::new(2);
        let mut rng = root_rng(1);
        let route = RoutePath::single_hop(LinkId(0)).shared();
        // Two packets on the same link: greedy serves one per slot, so
        // the second delivery lands exactly in main slot 2 of 2 — the
        // final main-phase slot of frame 1 (slots 4..8).
        let arrivals = vec![
            Packet::new(PacketId(0), route.clone(), 0),
            Packet::new(PacketId(1), route, 0),
        ];
        let mut outcome = SlotOutcome::empty();
        protocol.step(0, &arrivals, &phy, &mut rng, &mut outcome);
        let mut delivered = Vec::new();
        for slot in 1..12 {
            protocol.step(slot, &[], &phy, &mut rng, &mut outcome);
            for d in &outcome.delivered {
                delivered.push((slot, d.id));
            }
        }
        assert_eq!(
            delivered,
            vec![(4, PacketId(0)), (5, PacketId(1))],
            "second delivery must land in the final main-phase slot"
        );
        assert_eq!(protocol.delivered_total(), 2, "no double count");
        assert_eq!(protocol.backlog(), 0);
        assert_eq!(
            protocol.failed_backlog(),
            0,
            "delivered packet must not fail"
        );
        assert_eq!(protocol.potential(), 0);
        assert_eq!(
            protocol.stored_packets(),
            0,
            "store slots released at the rebuild"
        );
        let events = protocol.take_frame_events();
        // Even with select probability 1.0 nothing may be selected for
        // clean-up: the delivered-in-active packets are gone.
        assert!(events.iter().all(|e| e.cleanup_selected == 0));
        assert!(events.iter().all(|e| e.newly_failed == 0));
    }

    /// `backlog` must account for packets delivered in the main phase
    /// whose `active` slots are only reclaimed at the clean-up rebuild.
    #[test]
    fn backlog_drops_immediately_on_main_phase_delivery() {
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), tiny_config(0.5), 2);
        let phy = PerLinkFeasibility::new(2);
        let mut rng = root_rng(3);
        let route = RoutePath::single_hop(LinkId(1)).shared();
        let arrivals = vec![Packet::new(PacketId(7), route, 0)];
        let mut outcome = SlotOutcome::empty();
        protocol.step(0, &arrivals, &phy, &mut rng, &mut outcome);
        assert_eq!(protocol.backlog(), 1);
        for slot in 1..4 {
            protocol.step(slot, &[], &phy, &mut rng, &mut outcome);
        }
        // Frame 1, main slot 1: delivered. The rebuild has not run yet,
        // but the backlog must already exclude the delivered packet.
        protocol.step(4, &[], &phy, &mut rng, &mut outcome);
        assert_eq!(outcome.delivered.len(), 1);
        assert_eq!(
            protocol.backlog(),
            0,
            "delivered_in_active must offset backlog"
        );
    }

    /// At `cleanup_select_prob = 0.0` no failed packet is ever selected:
    /// the potential is monotone non-decreasing and failed buffers only
    /// grow.
    #[test]
    fn cleanup_select_prob_zero_never_selects() {
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), tiny_config(0.0), 2);
        // Fail the whole first frame's main phase (2 attempt slots).
        let phy = FailFirstCalls::new(2);
        let mut rng = root_rng(5);
        let route = RoutePath::single_hop(LinkId(0)).shared();
        let arrivals = vec![Packet::new(PacketId(0), route, 0)];
        let mut outcome = SlotOutcome::empty();
        let mut delivered = 0usize;
        protocol.step(0, &arrivals, &phy, &mut rng, &mut outcome);
        for slot in 1..40 {
            protocol.step(slot, &[], &phy, &mut rng, &mut outcome);
            delivered += outcome.delivered.len();
        }
        assert_eq!(delivered, 0, "an unselected failed packet cannot advance");
        assert_eq!(protocol.failed_backlog(), 1);
        assert_eq!(protocol.potential(), 1);
        let events = protocol.take_frame_events();
        assert_eq!(events[1].newly_failed, 1, "failure lands in frame 1");
        assert!(events.iter().all(|e| e.cleanup_selected == 0));
        assert!(events.iter().all(|e| e.cleanup_served == 0));
        assert_eq!(protocol.backlog(), 1, "packet is stuck but conserved");
    }

    /// The shared invariant layer must hold between every pair of slots
    /// of a driven run — injections, failures, clean-up recoveries and
    /// deliveries included. This is the runtime face of the checks
    /// `dps-model` proves exhaustively on tiny instances.
    #[test]
    fn invariants_hold_after_every_slot_of_a_driven_run() {
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), tiny_config(1.0), 2);
        // Fail the first three attempt slots so packets traverse the
        // failed buffers and clean-up selection, then succeed.
        let phy = FailFirstCalls::new(3);
        let mut rng = root_rng(11);
        let network = line_network(2);
        let route01 = RoutePath::new(&network, vec![LinkId(0), LinkId(1)])
            .unwrap()
            .shared();
        let route1 = RoutePath::single_hop(LinkId(1)).shared();
        let mut outcome = SlotOutcome::empty();
        for slot in 0..40u64 {
            // Stagger injections across frames and links.
            let arrivals = match slot {
                0 => vec![Packet::new(PacketId(0), route01.clone(), slot)],
                5 => vec![Packet::new(PacketId(1), route1.clone(), slot)],
                9 => vec![Packet::new(PacketId(2), route01.clone(), slot)],
                _ => Vec::new(),
            };
            protocol.step(slot, &arrivals, &phy, &mut rng, &mut outcome);
            protocol
                .check_invariants()
                .unwrap_or_else(|v| panic!("after slot {slot}: {v}"));
        }
        assert_eq!(protocol.delivered_total(), 3, "all packets delivered");
        assert_eq!(protocol.backlog(), 0);
        protocol.check_invariants().unwrap();
    }

    /// At `cleanup_select_prob = 1.0` every non-empty buffer selects in
    /// every frame: a failed multi-hop packet advances exactly one hop
    /// per frame through clean-up phases until delivered.
    #[test]
    fn cleanup_select_prob_one_always_selects() {
        let num_links = 2;
        let network = line_network(num_links);
        let mut config = tiny_config(1.0);
        config.m = num_links;
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        // Fail the whole first frame's main phase so the 2-hop packet
        // fails on its first link, then let every clean-up attempt
        // succeed.
        let phy = FailFirstCalls::new(2);
        let mut rng = root_rng(9);
        let route = RoutePath::new(&network, vec![LinkId(0), LinkId(1)])
            .unwrap()
            .shared();
        let arrivals = vec![Packet::new(PacketId(0), route, 0)];
        let mut outcome = SlotOutcome::empty();
        let mut delivered_at = None;
        protocol.step(0, &arrivals, &phy, &mut rng, &mut outcome);
        for slot in 1..20 {
            protocol.step(slot, &[], &phy, &mut rng, &mut outcome);
            if let Some(d) = outcome.delivered.first() {
                delivered_at = Some((slot, d.path_len));
            }
        }
        // Frame 1 (slots 4..8): main fails, packet fails with 2 hops
        // remaining (potential 2), clean-up slot 6 serves hop 1.
        // Frame 2 (slots 8..12): clean-up slot 10 serves hop 2 → done.
        assert_eq!(delivered_at, Some((10, 2)));
        let events = protocol.take_frame_events();
        assert_eq!(events[1].newly_failed, 1);
        assert_eq!(events[1].cleanup_selected, 1);
        assert_eq!(events[1].cleanup_served, 1);
        assert_eq!(events[1].potential_after, 1);
        assert_eq!(events[2].cleanup_selected, 1);
        assert_eq!(events[2].cleanup_served, 1);
        assert_eq!(events[2].potential_after, 0);
        assert!(events[3..].iter().all(|e| e.cleanup_selected == 0));
        assert_eq!(protocol.backlog(), 0);
        assert_eq!(protocol.stored_packets(), 0);
    }

    /// Driving the protocol only at hinted event slots — replaying the
    /// gaps with `skip_idle_slots` — must reproduce the per-slot run
    /// exactly: same deliveries, same frame events, same RNG stream.
    #[test]
    fn hinted_stepping_matches_per_slot_stepping() {
        use crate::feasibility::LossyFeasibility;
        let slots = 200u64;
        let make = || DynamicProtocol::new(GreedyPerLink::new(), tiny_config(0.5), 2);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(2), 0.5);
        let route = RoutePath::single_hop(LinkId(0)).shared();
        // A burst at slot 0 and a straggler mid-run; long arrival-free
        // stretches in between give the hints something to skip.
        let arrival_slots = [0u64, 97];

        let drive = |hinted: bool| -> (Vec<(u64, PacketId)>, Vec<FrameEvent>, usize) {
            let mut protocol = make();
            let mut rng = root_rng(77);
            let mut outcome = SlotOutcome::empty();
            let mut delivered = Vec::new();
            let mut slot = 0u64;
            while slot < slots {
                let arrivals: Vec<Packet> = if arrival_slots.contains(&slot) {
                    vec![
                        Packet::new(PacketId(2 * slot), route.clone(), slot),
                        Packet::new(PacketId(2 * slot + 1), route.clone(), slot),
                    ]
                } else {
                    Vec::new()
                };
                protocol.step(slot, &arrivals, &phy, &mut rng, &mut outcome);
                for d in &outcome.delivered {
                    delivered.push((slot, d.id));
                }
                if !hinted {
                    slot += 1;
                    continue;
                }
                let next = protocol
                    .next_event_slot(slot)
                    .expect("frame protocol always hints");
                // Arrivals are external events the protocol cannot see
                // coming: cap the skip at the next known arrival.
                let next_arrival = arrival_slots
                    .iter()
                    .copied()
                    .filter(|&s| s > slot)
                    .min()
                    .unwrap_or(u64::MAX);
                let target = next.min(next_arrival).min(slots);
                if target > slot + 1 {
                    protocol.skip_idle_slots(slot + 1, target - slot - 1);
                }
                slot = target.max(slot + 1);
            }
            // Flush: skip out the remaining inert slots so both runs
            // observed the same horizon.
            let events = protocol.take_frame_events();
            (delivered, events, protocol.backlog())
        };

        let per_slot = drive(false);
        let hinted = drive(true);
        assert_eq!(per_slot.0, hinted.0, "delivery streams diverged");
        assert_eq!(per_slot.1, hinted.1, "frame event streams diverged");
        assert_eq!(per_slot.2, hinted.2, "backlogs diverged");
        assert!(!per_slot.0.is_empty(), "degenerate test: nothing delivered");
    }

    /// Interning collapses structurally identical routes arriving behind
    /// distinct `Arc`s: the protocol's dictionary stays at one entry no
    /// matter how many packets flow.
    #[test]
    fn protocol_interns_duplicate_routes_once() {
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), tiny_config(1.0), 2);
        let phy = PerLinkFeasibility::new(2);
        let mut rng = root_rng(11);
        let mut outcome = SlotOutcome::empty();
        for slot in 0..40u64 {
            // A fresh Arc per packet: the content-dedup path, not the
            // pointer fast path.
            let arrivals = vec![Packet::new(
                PacketId(slot),
                RoutePath::single_hop(LinkId(0)).shared(),
                slot,
            )];
            protocol.step(slot, &arrivals, &phy, &mut rng, &mut outcome);
        }
        assert_eq!(protocol.route_table().len(), 1);
        assert_eq!(protocol.injected_total(), 40);
    }
}

#[cfg(test)]
mod golden_trace {
    use super::tests_support_golden::golden_fingerprint;
    use super::FrameEvent;

    /// Fingerprint captured on the pre-buffer-reuse frame loop (the
    /// per-slot/per-frame `Vec`-allocating version). The refactor must
    /// not change a single decision: same seed → same `FrameEvent`
    /// stream and same delivered/failed trace, bit for bit.
    ///
    /// Re-pinned when the golden driver switched from the naive
    /// per-generator sampler to the batch injection engine
    /// (`BatchStochasticInjector`): skip-ahead sampling consumes one RNG
    /// draw per *injection* instead of one per generator per slot, so
    /// the same seed produces a different — equally valid — injection
    /// trace, and every downstream decision moves with it. The previous
    /// pin was `hash = 0x5a08_62e8_be39_c7fb`, `injected = 1788`,
    /// `delivered = 1397`.
    /// The route-id-native lane (`inject_interned_into` feeding
    /// `step_interned`) must replay the exact same run as the `Packet`
    /// lane: same RNG stream, same decisions, same fingerprint.
    #[test]
    fn interned_lane_reproduces_the_golden_fingerprint() {
        let (hash, _, delivered, injected) =
            super::tests_support_golden::golden_fingerprint_interned();
        assert_eq!(injected, 1742, "interned injection trace diverged");
        assert_eq!(delivered, 1381, "interned delivered trace diverged");
        assert_eq!(
            hash, 0xf543_e521_3371_1729,
            "interned lane fingerprint diverged from the Packet lane"
        );
    }

    #[test]
    fn frame_event_stream_survives_buffer_reuse_refactor() {
        let (hash, events_head, delivered, injected) = golden_fingerprint();
        assert_eq!(injected, 1742, "injection trace diverged");
        assert_eq!(delivered, 1381, "delivered trace diverged");
        assert_eq!(
            events_head[2],
            FrameEvent {
                frame: 2,
                active_at_start: 54,
                newly_failed: 0,
                cleanup_selected: 0,
                cleanup_served: 0,
                potential_after: 0,
            }
        );
        assert_eq!(
            events_head[5],
            FrameEvent {
                frame: 5,
                active_at_start: 76,
                newly_failed: 11,
                cleanup_selected: 3,
                cleanup_served: 3,
                potential_after: 54,
            }
        );
        assert_eq!(hash, 0xf543_e521_3371_1729, "frame/delivery trace diverged");
    }
}

#[cfg(test)]
pub(crate) mod tests_support_golden {
    use super::*;
    use crate::feasibility::{LossyFeasibility, PerLinkFeasibility};
    use crate::graph::line_network;
    use crate::ids::PacketId;
    use crate::injection::batch::BatchStochasticInjector;
    use crate::injection::stochastic::uniform_generators;
    use crate::injection::Injector;
    use crate::path::RoutePath;
    use crate::rng::root_rng;
    use crate::staticsched::greedy::GreedyPerLink;

    /// Drives a lossy multi-hop workload with a fixed seed and folds the
    /// full FrameEvent stream plus the delivered-packet trace into an FNV
    /// fingerprint. Captured once before the buffer-reuse refactor and
    /// re-captured when the batch injection engine replaced the naive
    /// per-generator sampler on this path; the regression test asserts
    /// the exact same value after any further refactor.
    pub fn golden_fingerprint() -> (u64, Vec<FrameEvent>, usize, u64) {
        let num_links = 3;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.5);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let mut injector =
            BatchStochasticInjector::from(uniform_generators([full_path], 0.5).unwrap());
        let slots = 60 * protocol.config().frame_len as u64;
        let mut rng = root_rng(20120616);
        let mut delivered = Vec::new();
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut route_buf = Vec::new();
        let mut arrivals: Vec<Packet> = Vec::new();
        let mut outcome = SlotOutcome::empty();
        for slot in 0..slots {
            injector.inject_into(slot, &mut rng, &mut route_buf);
            arrivals.clear();
            arrivals.extend(route_buf.drain(..).map(|path| {
                let p = Packet::new(PacketId(next_id), path, slot);
                next_id += 1;
                p
            }));
            injected += arrivals.len() as u64;
            protocol.step(slot, &arrivals, &phy, &mut rng, &mut outcome);
            delivered.extend_from_slice(&outcome.delivered);
        }
        let events = protocol.take_frame_events();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            hash = (hash ^ v).wrapping_mul(0x1000_0000_01b3);
        };
        for e in &events {
            fold(e.frame);
            fold(e.active_at_start as u64);
            fold(e.newly_failed as u64);
            fold(e.cleanup_selected as u64);
            fold(e.cleanup_served as u64);
            fold(e.potential_after);
        }
        for d in &delivered {
            fold(d.id.0);
            fold(d.injected_at);
            fold(d.delivered_at);
            fold(d.path_len as u64);
        }
        (
            hash,
            events.into_iter().take(6).collect(),
            delivered.len(),
            injected,
        )
    }

    /// The same workload as [`golden_fingerprint`], driven through the
    /// route-id-native lane: the injector pre-interns routes against the
    /// protocol's own table and hands over [`InternedArrival`]s. Must
    /// reproduce the golden fingerprint bit for bit.
    pub fn golden_fingerprint_interned() -> (u64, Vec<FrameEvent>, usize, u64) {
        let num_links = 3;
        let network = line_network(num_links);
        let config =
            FrameConfig::tuned(&GreedyPerLink::new(), network.significant_size(), 0.7).unwrap();
        let mut protocol = DynamicProtocol::new(GreedyPerLink::new(), config, num_links);
        let phy = LossyFeasibility::new(PerLinkFeasibility::new(num_links), 0.5);
        let full_path = RoutePath::new(&network, (0..num_links as u32).map(LinkId).collect())
            .unwrap()
            .shared();
        let mut injector =
            BatchStochasticInjector::from(uniform_generators([full_path], 0.5).unwrap());
        assert!(injector.interned_capable());
        let slots = 60 * protocol.config().frame_len as u64;
        let mut rng = root_rng(20120616);
        let mut delivered = Vec::new();
        let mut next_id = 0u64;
        let mut injected = 0u64;
        let mut id_buf = Vec::new();
        let mut arrivals: Vec<InternedArrival> = Vec::new();
        let mut outcome = SlotOutcome::empty();
        for slot in 0..slots {
            {
                let table = protocol
                    .route_interner()
                    .expect("frame protocol interns routes");
                injector.inject_interned_into(slot, &mut rng, table, &mut id_buf);
            }
            arrivals.clear();
            arrivals.extend(id_buf.drain(..).map(|route| {
                let a = InternedArrival {
                    id: PacketId(next_id),
                    route,
                    injected_at: slot,
                };
                next_id += 1;
                a
            }));
            injected += arrivals.len() as u64;
            protocol.step_interned(slot, &arrivals, &phy, &mut rng, &mut outcome);
            delivered.extend_from_slice(&outcome.delivered);
        }
        let events = protocol.take_frame_events();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            hash = (hash ^ v).wrapping_mul(0x1000_0000_01b3);
        };
        for e in &events {
            fold(e.frame);
            fold(e.active_at_start as u64);
            fold(e.newly_failed as u64);
            fold(e.cleanup_selected as u64);
            fold(e.cleanup_served as u64);
            fold(e.potential_after);
        }
        for d in &delivered {
            fold(d.id.0);
            fold(d.injected_at);
            fold(d.delivered_at);
            fold(d.path_len as u64);
        }
        (
            hash,
            events.into_iter().take(6).collect(),
            delivered.len(),
            injected,
        )
    }
}
