//! Frame geometry for the dynamic protocol (Section 4).
//!
//! Time is divided into frames of `T` slots. Each frame consists of a main
//! phase of `T' = f(m)·J + g(m, m·J)` slots executing the static algorithm
//! `A(J, m·J)` on every un-failed packet's next hop (`J = (1+ε)·λ·T` is the
//! whp bound on the frame's injected measure), followed by a clean-up phase
//! executing `A(cleanup_bound, m·J)` on a randomly selected set of failed
//! packets.

use crate::error::ModelError;
use crate::staticsched::StaticScheduler;

/// The frame geometry of a [`crate::dynamic::DynamicProtocol`].
#[derive(Clone, Debug, PartialEq)]
pub struct FrameConfig {
    /// Significant network size `m`.
    pub m: usize,
    /// Target injection rate `λ`.
    pub lambda: f64,
    /// Stability slack `ε` with `λ = (1−ε)/f(m)`.
    pub epsilon: f64,
    /// Frame length `T` in slots.
    pub frame_len: usize,
    /// Per-frame measure bound `J = (1+ε)·λ·T` handed to the main phase.
    pub j_bound: f64,
    /// Main-phase budget `T'` in slots.
    pub main_budget: usize,
    /// Clean-up phase budget in slots.
    pub cleanup_budget: usize,
    /// Probability with which a link with a non-empty failed buffer selects
    /// a packet for the clean-up phase (the paper uses `1/m`).
    pub cleanup_select_prob: f64,
    /// Measure bound handed to the clean-up execution (the paper uses 1).
    pub cleanup_bound: f64,
}

impl FrameConfig {
    /// The paper's construction: `T ≥ 100·f/ε³ + 48·f·ln m / ε²` and large
    /// enough that the sublinear `g` term and the clean-up phase fit.
    ///
    /// These constants are astronomically conservative — useful to check
    /// the formulas, far too slow to simulate at scale; experiments use
    /// [`FrameConfig::tuned`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if `lambda ≥ 1/f(m)` (no `ε > 0`
    /// exists) or `lambda` is not positive and finite, and
    /// [`ModelError::InvalidConfig`] if no consistent `T` is found.
    pub fn theoretical<S: StaticScheduler + ?Sized>(
        scheduler: &S,
        m: usize,
        lambda: f64,
    ) -> Result<Self, ModelError> {
        let f = scheduler.f_of(m.max(2));
        let epsilon = Self::epsilon_for(f, lambda)?;
        let base =
            100.0 * f / epsilon.powi(3) + 48.0 * f * (m.max(2) as f64).ln() / epsilon.powi(2);
        let mut t = base.ceil().max(1.0) as usize;
        // Grow T until the g-term condition T ≥ (4f/ε²)·g(m, m·J) and the
        // two-phase fit hold; both right-hand sides grow sublinearly in T,
        // so doubling terminates.
        for _ in 0..128 {
            let j = (1.0 + epsilon) * lambda * t as f64;
            let n_bound = ((m as f64) * j).ceil().max(2.0) as usize;
            let g_cond = 4.0 * f / epsilon.powi(2) * scheduler.g_of(n_bound);
            let main = scheduler.slots_needed(j, n_bound);
            let cleanup = scheduler.slots_needed(1.0, n_bound);
            if (t as f64) >= g_cond && t >= main + cleanup {
                return Ok(FrameConfig {
                    m,
                    lambda,
                    epsilon,
                    frame_len: t,
                    j_bound: j,
                    main_budget: main,
                    cleanup_budget: cleanup,
                    cleanup_select_prob: 1.0 / m.max(1) as f64,
                    cleanup_bound: 1.0,
                });
            }
            t *= 2;
        }
        Err(ModelError::InvalidConfig(
            "no consistent frame length found; g(m, n) may grow superlinearly".into(),
        ))
    }

    /// A practical construction: the smallest `T` such that main and
    /// clean-up phases fit into the frame, found by fixed-point iteration.
    /// The map `T ↦ T' + cleanup` is (nearly) affine with slope
    /// `(1−ε)(1+ε) < 1`, so a fixed point exists whenever `λ < 1/f(m)`.
    ///
    /// Clean-up uses a select probability of `min(1, 4/m)` and measure
    /// bound 4 — draining failed buffers orders of magnitude faster than
    /// the worst-case `1/m` of the proof while preserving the stability
    /// argument's shape (the clean-up set's measure stays `O(1)` w.h.p.).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if `lambda ≥ 1/f(m)` or is not
    /// positive and finite, and [`ModelError::InvalidConfig`] if the
    /// iteration fails to converge (rate too close to the threshold).
    pub fn tuned<S: StaticScheduler + ?Sized>(
        scheduler: &S,
        m: usize,
        lambda: f64,
    ) -> Result<Self, ModelError> {
        let f = scheduler.f_of(m.max(2));
        let epsilon = Self::epsilon_for(f, lambda)?;
        let cleanup_bound = 4.0_f64.min(m as f64).max(1.0);
        let phases = |t: usize| -> (f64, usize, usize) {
            let j = ((1.0 + epsilon) * lambda * t as f64).max(1.0);
            let n_bound = ((m as f64) * j).ceil().max(2.0) as usize;
            let main = scheduler.slots_needed(j, n_bound);
            let cleanup = scheduler.slots_needed(cleanup_bound, n_bound);
            (j, main, cleanup)
        };
        // Jump near the fixed point of the (almost affine) map
        // t ↦ main(t) + cleanup(t), then settle by iteration.
        let needed = |t: usize| {
            let (_, main, cleanup) = phases(t);
            main + cleanup
        };
        // Wide sample points keep the integer ceilings in `slots_needed`
        // from rounding the slope estimate up to exactly 1.
        let (a, b) = (1usize << 16, 1usize << 20);
        let (pa, pb) = (needed(a), needed(b));
        let slope = (pb as f64 - pa as f64) / (b - a) as f64;
        let mut t = if slope < 1.0 - 1e-9 {
            let intercept = pa as f64 - slope * a as f64;
            (intercept / (1.0 - slope)).ceil().max(16.0) as usize
        } else {
            16
        };
        for _ in 0..1024 {
            if t > (1usize << 40) {
                return Err(ModelError::InvalidConfig(
                    "frame length diverged; lambda is too close to 1/f(m)".into(),
                ));
            }
            let (j, main, cleanup) = phases(t);
            if main + cleanup <= t {
                return Ok(FrameConfig {
                    m,
                    lambda,
                    epsilon,
                    frame_len: t,
                    j_bound: j,
                    main_budget: main,
                    cleanup_budget: cleanup,
                    cleanup_select_prob: (4.0 / m.max(1) as f64).min(1.0),
                    cleanup_bound,
                });
            }
            // Geometric fallback step: settles residual error from the
            // affine jump quickly even when the map's slope is near 1.
            t = (main + cleanup).max(t + (t / 1024).max(1));
        }
        Err(ModelError::InvalidConfig(
            "frame-length iteration did not converge; lambda may be too close to 1/f(m)".into(),
        ))
    }

    /// The stability slack `ε = 1 − λ·f`, clamped to the paper's `ε ≤ 1/2`.
    fn epsilon_for(f: f64, lambda: f64) -> Result<f64, ModelError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(ModelError::InvalidRate(lambda));
        }
        let epsilon = 1.0 - lambda * f;
        if epsilon <= 0.0 {
            return Err(ModelError::InvalidRate(lambda));
        }
        Ok(epsilon.min(0.5))
    }

    /// The maximum injection rate `1/f(m)` the protocol built from
    /// `scheduler` can target on a network of size `m` — the paper's
    /// throughput bound, used to compute competitive ratios.
    pub fn max_rate<S: StaticScheduler + ?Sized>(scheduler: &S, m: usize) -> f64 {
        1.0 / scheduler.f_of(m.max(2))
    }

    /// Validates internal consistency (phases fit, bounds positive).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] describing the violated
    /// condition.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.main_budget + self.cleanup_budget > self.frame_len {
            return Err(ModelError::InvalidConfig(format!(
                "phases ({} + {}) exceed frame length {}",
                self.main_budget, self.cleanup_budget, self.frame_len
            )));
        }
        if self.j_bound.is_nan() || self.j_bound <= 0.0 {
            return Err(ModelError::InvalidConfig("J must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.cleanup_select_prob) {
            return Err(ModelError::InvalidConfig(
                "cleanup selection probability outside [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staticsched::greedy::GreedyPerLink;
    use crate::staticsched::uniform_rate::UniformRateScheduler;

    #[test]
    fn tuned_config_fits_phases_into_frame() {
        let cfg = FrameConfig::tuned(&GreedyPerLink::new(), 8, 0.5).unwrap();
        cfg.validate().unwrap();
        assert!(cfg.main_budget + cfg.cleanup_budget <= cfg.frame_len);
        assert!(cfg.j_bound >= (1.0 + cfg.epsilon) * cfg.lambda * cfg.frame_len as f64 - 1e-9);
    }

    #[test]
    fn tuned_rejects_rate_at_or_above_threshold() {
        // GreedyPerLink has f = 1: rates >= 1 are infeasible.
        assert!(FrameConfig::tuned(&GreedyPerLink::new(), 8, 1.0).is_err());
        assert!(FrameConfig::tuned(&GreedyPerLink::new(), 8, 1.5).is_err());
        assert!(FrameConfig::tuned(&GreedyPerLink::new(), 8, 0.99).is_ok());
    }

    #[test]
    fn theoretical_config_satisfies_paper_bounds() {
        let s = GreedyPerLink::new();
        let m = 4;
        let lambda = 0.5;
        let cfg = FrameConfig::theoretical(&s, m, lambda).unwrap();
        cfg.validate().unwrap();
        let f = s.f_of(m);
        assert!(
            cfg.frame_len as f64
                >= 100.0 * f / cfg.epsilon.powi(3)
                    + 48.0 * f * (m as f64).ln() / cfg.epsilon.powi(2)
        );
        assert_eq!(cfg.cleanup_select_prob, 0.25);
        assert_eq!(cfg.cleanup_bound, 1.0);
    }

    #[test]
    fn epsilon_is_clamped_to_half() {
        let cfg = FrameConfig::tuned(&GreedyPerLink::new(), 4, 0.01).unwrap();
        assert_eq!(cfg.epsilon, 0.5);
    }

    #[test]
    fn max_rate_reflects_scheduler_coefficient() {
        assert_eq!(FrameConfig::max_rate(&GreedyPerLink::new(), 100), 1.0);
        assert!(FrameConfig::max_rate(&UniformRateScheduler::new(), 100) < 1.0);
    }

    #[test]
    fn tuned_is_minimal_up_to_iteration() {
        // The returned frame length admits both phases, and shrinking it
        // below the phase budgets would not.
        let cfg = FrameConfig::tuned(&GreedyPerLink::new(), 4, 0.5).unwrap();
        assert!(cfg.main_budget + cfg.cleanup_budget <= cfg.frame_len);
    }

    #[test]
    fn validate_catches_overfull_frame() {
        let mut cfg = FrameConfig::tuned(&GreedyPerLink::new(), 4, 0.5).unwrap();
        cfg.frame_len = cfg.main_budget; // leave no room for cleanup
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_nonpositive_lambda() {
        assert!(FrameConfig::tuned(&GreedyPerLink::new(), 4, 0.0).is_err());
        assert!(FrameConfig::tuned(&GreedyPerLink::new(), 4, f64::NAN).is_err());
    }
}
