//! The dynamic scheduling protocol of Sections 4 and 5: time frames, a main
//! phase serving un-failed packets, and a clean-up phase draining the
//! buffers of failed packets.
//!
//! * [`FrameConfig`] — the frame geometry (`T`, `J`, phase budgets), with
//!   both the paper's conservative constants and a tuned fixed-point
//!   construction used by the experiments;
//! * [`DynamicProtocol`] — the protocol itself (stochastic injection,
//!   Section 4);
//! * [`AdversarialWrapper`] — the Section 5 reduction: each packet waits a
//!   uniformly random number of frames before entering the protocol, which
//!   smooths any `(w, λ)`-bounded adversary into the stochastic analysis.

mod adversarial;
mod config;
mod frame;

pub use adversarial::AdversarialWrapper;
pub use config::FrameConfig;
pub use frame::{DynamicProtocol, FrameEvent};
