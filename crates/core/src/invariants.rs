//! Machine-checked protocol invariants: one definition, three consumers.
//!
//! The frame protocol's stability guarantee rests on bookkeeping
//! identities — packet conservation, potential accounting, the
//! store/free-list partition — that aggressive data-plane refactors can
//! break silently: a golden fingerprint detects *that* something drifted
//! but cannot say *which* identity broke. This module states each
//! invariant once, as a plain check function returning a structured
//! [`InvariantViolation`], and three layers call the same definitions:
//!
//! * the **exhaustive model checker** (`dps-model`) checks them in every
//!   reachable state of tiny instances;
//! * the **simulation runner** (`dps_sim::run_simulation`) asserts them
//!   after every slot when the `check-invariants` cargo feature is
//!   enabled, so long unattended runs fail loudly on breach instead of
//!   silently on corrupt statistics;
//! * **unit tests and proptests** call them directly on hand-built and
//!   generated states.
//!
//! The checks live here rather than inside the data structures so a
//! violation is reported with the *invariant's* name (the paper's lemma
//! language) rather than a local `debug_assert!` with no context.

use crate::route_table::RouteTable;
use crate::store::{PacketRef, PacketStore};
use std::fmt;

/// A named invariant breach: which identity broke, and how.
///
/// The `invariant` tag is a stable machine-readable name (used by the
/// model checker's counterexample reports and by tests asserting that a
/// *specific* invariant is detected); `details` is human-readable
/// context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable name of the violated invariant (e.g. `"store-partition"`).
    pub invariant: &'static str,
    /// Human-readable description of the breach.
    pub details: String,
}

impl InvariantViolation {
    /// A violation of `invariant` described by `details`.
    pub fn new(invariant: &'static str, details: impl Into<String>) -> Self {
        InvariantViolation {
            invariant,
            details: details.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.details
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Structural consistency of a [`PacketStore`]: all SoA columns have the
/// same length, and the free list holds only in-range, pairwise-distinct
/// slots.
///
/// # Errors
///
/// Returns the first violated identity as an [`InvariantViolation`]
/// tagged `store-columns` or `store-free-list`.
pub fn check_store(store: &PacketStore) -> Result<(), InvariantViolation> {
    let lens = store.column_lens();
    if lens.iter().any(|&l| l != lens[0]) {
        return Err(InvariantViolation::new(
            "store-columns",
            format!("SoA columns diverged: id/route/injected/hop/state lengths {lens:?}"),
        ));
    }
    let capacity = lens[0];
    let free = store.free_slots();
    let mut seen = vec![false; capacity];
    for &slot in free {
        let i = slot as usize;
        if i >= capacity {
            return Err(InvariantViolation::new(
                "store-free-list",
                format!("free slot {slot} out of range (capacity {capacity})"),
            ));
        }
        if seen[i] {
            return Err(InvariantViolation::new(
                "store-free-list",
                format!("slot {slot} appears twice on the free list"),
            ));
        }
        seen[i] = true;
    }
    Ok(())
}

/// The store-partition invariant: the caller's live refs and the store's
/// free list partition the store's slots — every slot is either live or
/// free, never both, never neither, never twice.
///
/// This is the identity the frame protocol's slot-recycling discipline
/// maintains (a delivered packet's slot is freed exactly once, at the
/// main→clean-up rebuild or on clean-up delivery) and the one a leaked
/// or double-freed slot breaks.
///
/// # Errors
///
/// Returns [`check_store`]'s violations, plus `store-partition` when the
/// live set and free list fail to partition the slots.
pub fn check_store_partition<I>(store: &PacketStore, live: I) -> Result<(), InvariantViolation>
where
    I: IntoIterator<Item = PacketRef>,
{
    check_store(store)?;
    let capacity = store.capacity();
    // 0 = unaccounted, 1 = live, 2 = free.
    let mut tag = vec![0u8; capacity];
    for &slot in store.free_slots() {
        tag[slot as usize] = 2;
    }
    let mut live_count = 0usize;
    for p in live {
        let i = p.index();
        if i >= capacity {
            return Err(InvariantViolation::new(
                "store-partition",
                format!("live ref {p:?} out of range (capacity {capacity})"),
            ));
        }
        match tag[i] {
            2 => {
                return Err(InvariantViolation::new(
                    "store-partition",
                    format!("ref {p:?} is both live and on the free list"),
                ))
            }
            1 => {
                return Err(InvariantViolation::new(
                    "store-partition",
                    format!("ref {p:?} appears twice in the live set"),
                ))
            }
            _ => tag[i] = 1,
        }
        live_count += 1;
    }
    if let Some(slot) = tag.iter().position(|&t| t == 0) {
        return Err(InvariantViolation::new(
            "store-partition",
            format!("slot {slot} leaked: neither live nor on the free list"),
        ));
    }
    debug_assert_eq!(live_count + store.free_slots().len(), capacity);
    if store.live() != live_count {
        return Err(InvariantViolation::new(
            "store-partition",
            format!(
                "store reports {} live slots but the live set has {live_count}",
                store.live()
            ),
        ));
    }
    Ok(())
}

/// Intern canonicality of a [`RouteTable`]: dense ids, a well-formed CSR
/// layout that matches the canonical `Arc`s, exactly one content entry
/// per distinct route, only valid ids behind the pointer fast path, and
/// the alias-pinning memory bound.
///
/// # Errors
///
/// Returns the first violated identity, tagged `route-csr`,
/// `route-content-map`, `route-ptr-map` or `route-pin-bound`.
pub fn check_route_table(table: &RouteTable) -> Result<(), InvariantViolation> {
    let n = table.len();
    let offsets = table.csr_offsets();
    if offsets.len() != n {
        return Err(InvariantViolation::new(
            "route-csr",
            format!("{n} routes but {} CSR offsets", offsets.len()),
        ));
    }
    let mut prev = 0u32;
    for (i, &end) in offsets.iter().enumerate() {
        if end < prev {
            return Err(InvariantViolation::new(
                "route-csr",
                format!("CSR offsets not monotone at route {i}: {end} < {prev}"),
            ));
        }
        prev = end;
    }
    if offsets.last().copied().unwrap_or(0) as usize != table.csr_links().len() {
        return Err(InvariantViolation::new(
            "route-csr",
            format!(
                "CSR tail {} does not cover the {} flattened links",
                offsets.last().copied().unwrap_or(0),
                table.csr_links().len()
            ),
        ));
    }
    for (i, canonical) in table.iter().enumerate() {
        let id = crate::route_table::RouteId(i as u32);
        if table.links_of(id) != canonical.links() {
            return Err(InvariantViolation::new(
                "route-csr",
                format!("CSR links of route {id} diverge from the canonical Arc"),
            ));
        }
    }
    // Content map: a bijection between distinct routes and dense ids.
    if table.content_entries() != n {
        return Err(InvariantViolation::new(
            "route-content-map",
            format!(
                "{n} routes but {} content-dedup entries",
                table.content_entries()
            ),
        ));
    }
    if let Some((route, id)) = table.find_broken_content_entry() {
        return Err(InvariantViolation::new(
            "route-content-map",
            format!("content entry for {route:?} maps to non-canonical id {id}"),
        ));
    }
    if let Some(id) = table.find_invalid_ptr_entry() {
        return Err(InvariantViolation::new(
            "route-ptr-map",
            format!("pointer fast path maps to out-of-range id {id}"),
        ));
    }
    let (pinned, bound) = table.pin_usage();
    if pinned > bound {
        return Err(InvariantViolation::new(
            "route-pin-bound",
            format!("{pinned} pinned aliases exceed the bound {bound}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, PacketId};
    use crate::path::RoutePath;
    use crate::route_table::RouteId;

    #[test]
    fn fresh_store_passes() {
        let store = PacketStore::new();
        check_store(&store).unwrap();
        check_store_partition(&store, []).unwrap();
    }

    #[test]
    fn live_and_free_partition_is_enforced() {
        let mut store = PacketStore::new();
        let a = store.insert(PacketId(0), RouteId(0), 0);
        let b = store.insert(PacketId(1), RouteId(0), 0);
        check_store_partition(&store, [a, b]).unwrap();
        store.free(a);
        check_store_partition(&store, [b]).unwrap();
        // A leaked slot (neither live nor free) is caught…
        let err = check_store_partition(&store, []).unwrap_err();
        assert_eq!(err.invariant, "store-partition");
        assert!(err.details.contains("leaked"), "{err}");
        // …as is claiming a freed slot live…
        let err = check_store_partition(&store, [a, b]).unwrap_err();
        assert_eq!(err.invariant, "store-partition");
        // …and a duplicated live ref.
        let err = check_store_partition(&store, [b, b]).unwrap_err();
        assert_eq!(err.invariant, "store-partition");
        assert!(err.details.contains("twice"), "{err}");
    }

    #[test]
    fn route_table_canonicality_passes_on_real_tables() {
        let mut table = RouteTable::new();
        let r1 = RoutePath::from_links_unchecked(vec![LinkId(0), LinkId(1)]).shared();
        let r2 = RoutePath::from_links_unchecked(vec![LinkId(2)]).shared();
        table.intern(&r1);
        table.intern(&r2);
        // Duplicate content behind a fresh Arc must not break canonicality.
        let dup = RoutePath::from_links_unchecked(vec![LinkId(0), LinkId(1)]).shared();
        table.intern(&dup);
        check_route_table(&table).unwrap();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn empty_route_table_passes() {
        check_route_table(&RouteTable::new()).unwrap();
    }

    #[test]
    fn violation_displays_its_name() {
        let v = InvariantViolation::new("store-partition", "slot 3 leaked");
        assert_eq!(
            v.to_string(),
            "invariant `store-partition` violated: slot 3 leaked"
        );
    }
}
