//! Core model of *Dynamic Packet Scheduling in Wireless Networks*
//! (Thomas Kesselheim, PODC 2012).
//!
//! The paper's central abstraction is a **linear interference measure**: a
//! matrix `W` over the communication links of a network with `W[e][e] = 1`
//! and `W[e][e'] ∈ [0, 1]` quantifying how much a transmission on `e` is
//! disturbed by a simultaneous transmission on `e'`. For a load vector `R`
//! (number of packets per link) the *interference measure* is
//! `I = ‖W·R‖∞ = max_e Σ_e' W[e][e']·R(e')`.
//!
//! On top of this abstraction the crate provides:
//!
//! * the network model ([`graph::Network`], [`path::RoutePath`],
//!   [`packet::Packet`], [`load::LinkLoad`]) — Section 2 of the paper;
//! * interference models ([`interference::InterferenceModel`]) and physical
//!   feasibility oracles ([`feasibility::Feasibility`]);
//! * the two injection models ([`injection::stochastic::StochasticInjector`] and the
//!   `(w, λ)`-bounded adversaries in [`injection::adversarial`]) — Section 2.1;
//! * step-wise static scheduling algorithms
//!   ([`staticsched::StaticScheduler`]), including the uniform-rate algorithm
//!   of Theorem 19 and a two-stage decay scheduler;
//! * **Algorithm 1**, the transformation making static algorithms scale
//!   linearly in `I` for dense instances ([`transform::DenseTransform`]) —
//!   Section 3;
//! * the **dynamic frame protocol** turning any such static algorithm into a
//!   stable dynamic protocol ([`dynamic::DynamicProtocol`]) — Section 4 —
//!   and its adversarial-injection wrapper
//!   ([`dynamic::AdversarialWrapper`]) — Section 5.
//!
//! # Quick example
//!
//! ```
//! use dps_core::prelude::*;
//! use rand::SeedableRng;
//!
//! // A 4-node line network with 3 links.
//! let mut builder = NetworkBuilder::new();
//! let nodes: Vec<_> = (0..4).map(|_| builder.add_node()).collect();
//! let links: Vec<_> = (0..3)
//!     .map(|i| builder.add_link(nodes[i], nodes[i + 1]))
//!     .collect();
//! let network = builder.max_path_len(3).build();
//!
//! // Packet routing: interference is the identity matrix, so the measure of
//! // a load vector is simply the maximum congestion.
//! let model = IdentityInterference::new(network.num_links());
//! let mut load = LinkLoad::new(network.num_links());
//! load.add(links[0], 2.0);
//! load.add(links[1], 5.0);
//! assert_eq!(model.measure(&load), 5.0);
//!
//! // A path across the whole line, validated against the network.
//! let path = RoutePath::new(&network, links.clone())?;
//! assert_eq!(path.len(), 3);
//! # Ok::<(), dps_core::error::ModelError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod dynamic;
pub mod error;
pub mod feasibility;
pub mod graph;
pub mod ids;
pub mod injection;
pub mod interference;
pub mod invariants;
pub mod load;
pub mod packet;
pub mod parallel;
pub mod path;
pub mod potential;
pub mod protocol;
pub mod region;
pub mod rng;
pub mod route_table;
pub mod staticsched;
pub mod store;
pub mod transform;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::dynamic::{AdversarialWrapper, DynamicProtocol, FrameConfig};
    pub use crate::error::ModelError;
    pub use crate::feasibility::{
        Attempt, Feasibility, JammedFeasibility, LossyFeasibility, PerLinkFeasibility,
        SingleChannelFeasibility, ThresholdFeasibility,
    };
    pub use crate::graph::{Link, Network, NetworkBuilder};
    pub use crate::ids::{LinkId, NodeId, PacketId};
    pub use crate::injection::adversarial::{
        BurstyAdversary, RoundRobinAdversary, SingleEdgeAdversary, SmoothAdversary, WindowValidator,
    };
    pub use crate::injection::batch::BatchStochasticInjector;
    pub use crate::injection::stochastic::{GeneratorSpec, StochasticInjector};
    pub use crate::injection::Injector;
    pub use crate::interference::{
        CompleteInterference, DenseInterference, IdentityInterference, InterferenceModel,
    };
    pub use crate::invariants::InvariantViolation;
    pub use crate::load::LinkLoad;
    pub use crate::packet::{DeliveredPacket, Packet};
    pub use crate::path::RoutePath;
    pub use crate::protocol::{Protocol, SlotOutcome};
    pub use crate::region::{ActiveLinkSet, RegionMap};
    pub use crate::route_table::{RouteId, RouteTable};
    pub use crate::staticsched::greedy::GreedyPerLink;
    pub use crate::staticsched::two_stage::TwoStageDecayScheduler;
    pub use crate::staticsched::uniform_rate::UniformRateScheduler;
    pub use crate::staticsched::{
        run_static, Request, StaticAlgorithm, StaticRunResult, StaticScheduler,
    };
    pub use crate::store::{PacketRef, PacketState, PacketStore};
    pub use crate::transform::DenseTransform;
}
