//! The workspace's one parallel-execution primitive: an order-preserving
//! chunked thread-pool map.
//!
//! [`parallel_map`] lives in `dps-core` so that both the simulation
//! layer (repetition fans, scenario sweeps) and the substrate layer
//! (the region-sharded tiled SINR slot kernel) can share it without a
//! dependency cycle; `dps_sim::parallel` re-exports it under its
//! historical path.

/// Maps `job` over `0..jobs` on up to `threads` OS threads, returning the
/// results in job order.
///
/// Work is handed out through an atomic counter in contiguous *chunks* —
/// each `fetch_add` claims a run of consecutive job indices, and a
/// chunk's results enter the result vector under one lock acquisition —
/// so the per-job dispatch cost (one contended atomic plus one mutex
/// round trip) is amortized away for the many-tiny-jobs workloads the
/// shared-substrate sweeps produce. The chunk size only affects *which
/// thread* computes a job, never *what* the job computes: results are a
/// pure function of the job index, making runs reproducible across
/// thread counts (and chunkings).
pub fn parallel_map<R, F>(jobs: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        return (0..jobs).map(job).collect();
    }
    // Aim for several chunks per thread so stragglers still balance,
    // while long grids hand out whole runs of cells at a time.
    let chunk = jobs.div_ceil(threads * 8).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<(usize, R)>> =
        std::sync::Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                if start >= jobs {
                    break;
                }
                let end = (start + chunk).min(jobs);
                let mut batch: Vec<(usize, R)> = Vec::with_capacity(end - start);
                for index in start..end {
                    batch.push((index, job(index)));
                }
                results
                    .lock()
                    .expect("no panics while holding the lock")
                    .append(&mut batch);
            });
        }
    });
    let mut results = results.into_inner().expect("threads joined");
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_is_order_preserving_and_complete() {
        // Job counts straddling chunk boundaries: exact multiples, a
        // remainder chunk, fewer jobs than threads, and a single job.
        for jobs in [1usize, 3, 7, 16, 23, 64, 97] {
            for threads in [1usize, 2, 3, 8] {
                let got = parallel_map(jobs, threads, |i| i * i);
                let want: Vec<usize> = (0..jobs).map(|i| i * i).collect();
                assert_eq!(got, want, "jobs={jobs} threads={threads}");
            }
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }
}
