//! Packets: a route plus bookkeeping about injection time and progress.

use crate::ids::{LinkId, PacketId};
use crate::path::RoutePath;
use std::sync::Arc;

/// A packet travelling through the network along a fixed route.
#[derive(Clone, Debug)]
pub struct Packet {
    id: PacketId,
    path: Arc<RoutePath>,
    injected_at: u64,
}

impl Packet {
    /// Creates a packet with the given identity, route and injection slot.
    pub fn new(id: PacketId, path: Arc<RoutePath>, injected_at: u64) -> Self {
        Packet {
            id,
            path,
            injected_at,
        }
    }

    /// The packet's unique id.
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// The packet's route.
    pub fn path(&self) -> &Arc<RoutePath> {
        &self.path
    }

    /// The time slot in which the packet entered the system.
    pub fn injected_at(&self) -> u64 {
        self.injected_at
    }

    /// Total number of hops on the route (the `d` of Theorem 8).
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// The link crossed at hop `hop`, if the route is that long.
    pub fn hop_link(&self, hop: usize) -> Option<LinkId> {
        self.path.hop(hop)
    }
}

/// Record of a packet that reached its final destination, as reported in a
/// [`crate::protocol::SlotOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveredPacket {
    /// The delivered packet's id.
    pub id: PacketId,
    /// Slot at which the packet was injected.
    pub injected_at: u64,
    /// Slot at which the last hop succeeded.
    pub delivered_at: u64,
    /// Route length `d` of the packet.
    pub path_len: usize,
}

impl DeliveredPacket {
    /// Latency from injection to delivery, in slots.
    pub fn latency(&self) -> u64 {
        self.delivered_at.saturating_sub(self.injected_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(injected_at: u64) -> Packet {
        Packet::new(
            PacketId(1),
            RoutePath::from_links_unchecked(vec![LinkId(0), LinkId(1)]).shared(),
            injected_at,
        )
    }

    #[test]
    fn packet_exposes_route_structure() {
        let p = packet(10);
        assert_eq!(p.path_len(), 2);
        assert_eq!(p.hop_link(0), Some(LinkId(0)));
        assert_eq!(p.hop_link(2), None);
        assert_eq!(p.injected_at(), 10);
        assert_eq!(p.id(), PacketId(1));
    }

    #[test]
    fn latency_is_delivery_minus_injection() {
        let d = DeliveredPacket {
            id: PacketId(1),
            injected_at: 10,
            delivered_at: 35,
            path_len: 2,
        };
        assert_eq!(d.latency(), 25);
    }

    #[test]
    fn latency_saturates_rather_than_underflows() {
        let d = DeliveredPacket {
            id: PacketId(1),
            injected_at: 10,
            delivered_at: 5,
            path_len: 1,
        };
        assert_eq!(d.latency(), 0);
    }
}
