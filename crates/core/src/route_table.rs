//! Interned routes: the columnar data plane's route dictionary.
//!
//! A simulation's route family is small (a workload generator emits at
//! most a few thousand distinct routes) while the packet population is
//! large and churning. Carrying an `Arc<RoutePath>` inside every packet
//! therefore pays refcount traffic on every injection/delivery and a
//! two-hop pointer chase (`Arc` → `RoutePath` → links vector) on every
//! hop lookup in the slot loop. A [`RouteTable`] interns each distinct
//! route once, hands out dense [`RouteId`]s, and stores all hop links
//! flattened in one contiguous CSR array — a hop lookup is two reads
//! from dense memory and moving a packet moves a `u32`.
//!
//! Interning is content-based (two structurally equal routes collapse to
//! one id, which is what lets the [`crate::dynamic::DynamicProtocol`]
//! treat the workload generators' duplicated routes as one), with an
//! `Arc`-pointer-identity fast path for the common case of injectors
//! re-sharing the same `Arc` for every packet.

use crate::ids::LinkId;
use crate::path::RoutePath;
// Determinism audit (dps-lint: hash-container): both maps are
// lookup/insert-only on the hot path — no simulation decision ever
// iterates them, and ids are assigned by interning order, not map
// order. The only iteration is the invariant layer's verification walk
// (a pass/fail conjunction). Audited sites are listed in dps-lint.allow.
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Fibonacci multiplicative hasher for the pointer-identity fast path:
/// the key is a single pre-randomized address, so SipHash's
/// collision-resistance buys nothing and its ~20 ns per lookup lands on
/// every injected packet.
#[derive(Default)]
struct PtrHasher(u64);

impl Hasher for PtrHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.0 = (n as u64 ^ self.0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Spread the high bits down: HashMap uses the low bits for
        // bucket selection and the top 7 for its control bytes.
        self.0 ^ (self.0 >> 29)
    }
}

/// Identifier of an interned route: a dense index into a [`RouteTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteId(pub u32);

impl RouteId {
    /// The route index as a `usize`, for indexing per-route arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RouteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Interns [`RoutePath`]s once per scenario and serves hop lookups from a
/// flattened link array.
///
/// Structurally equal routes receive the same [`RouteId`] no matter how
/// many `Arc`s they arrive behind; the first `Arc` seen for a route
/// becomes its canonical shared handle ([`RouteTable::get`]).
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    /// Canonical `Arc` per interned route, for callers that still need
    /// the validated [`RoutePath`] object.
    routes: Vec<Arc<RoutePath>>,
    /// CSR offsets into `links`: route `r` occupies
    /// `links[offsets[r] .. offsets[r + 1]]`.
    offsets: Vec<u32>,
    /// All hop links of all interned routes, concatenated.
    links: Vec<LinkId>,
    /// Content-keyed dedup map (hashes the link sequence).
    by_content: HashMap<Arc<RoutePath>, RouteId>,
    /// Pointer-identity fast path: `Arc::as_ptr` (as an address) of every
    /// `Arc` ever interned. Addresses are identity keys only, never
    /// dereferenced; the `Arc` clone pinned in `pinned`/`routes` keeps
    /// each allocation alive, so an address can never be recycled for a
    /// different route while the table exists.
    by_ptr: HashMap<usize, RouteId, BuildHasherDefault<PtrHasher>>,
    /// Aliased `Arc`s pinned for the lifetime of `by_ptr` (see above).
    pinned: Vec<Arc<RoutePath>>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Most aliased `Arc`s the table will pin for the pointer fast
    /// path, on top of four per distinct route: long-lived injector
    /// aliases all get registered, while a workload that wraps every
    /// packet's route in a fresh `Arc` stops registering once the cap
    /// is reached and falls back to the content hash — bounding the
    /// table at O(#distinct routes) memory instead of O(#packets).
    const PIN_SLACK: usize = 64;

    /// Interns `route`, returning the id of the structurally equal route
    /// already in the table or a fresh id for a new one.
    pub fn intern(&mut self, route: &Arc<RoutePath>) -> RouteId {
        let ptr = Arc::as_ptr(route) as usize;
        if let Some(&id) = self.by_ptr.get(&ptr) {
            return id;
        }
        match self.by_content.get(route) {
            Some(&id) => {
                // A new Arc alias of a known route: remember the address
                // (and pin the Arc so it cannot be dropped and the
                // address recycled for a different route) — unless the
                // alias budget is spent, in which case this Arc keeps
                // paying the content hash.
                if self.pinned.len() < 4 * self.routes.len() + Self::PIN_SLACK {
                    self.pinned.push(route.clone());
                    self.by_ptr.insert(ptr, id);
                }
                id
            }
            None => {
                let id = RouteId(self.routes.len() as u32);
                self.links.extend_from_slice(route.links());
                self.offsets.push(self.links.len() as u32);
                // The canonical Arc in `routes` keeps this address
                // alive; no extra pin needed for its `by_ptr` entry.
                self.routes.push(route.clone());
                self.by_content.insert(route.clone(), id);
                self.by_ptr.insert(ptr, id);
                id
            }
        }
    }

    /// Interns every route of an iterator, returning the ids in order
    /// (duplicates collapse to equal ids).
    pub fn intern_all<'a, I>(&mut self, routes: I) -> Vec<RouteId>
    where
        I: IntoIterator<Item = &'a Arc<RoutePath>>,
    {
        routes.into_iter().map(|r| self.intern(r)).collect()
    }

    /// The canonical shared handle of an interned route.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an id this table handed out.
    pub fn get(&self, id: RouteId) -> &Arc<RoutePath> {
        &self.routes[id.index()]
    }

    /// Number of hops of route `id`.
    #[inline]
    pub fn len_of(&self, id: RouteId) -> usize {
        self.links_of(id).len()
    }

    /// All hop links of route `id`, in order.
    #[inline]
    pub fn links_of(&self, id: RouteId) -> &[LinkId] {
        let i = id.index();
        let start = if i == 0 {
            0
        } else {
            self.offsets[i - 1] as usize
        };
        &self.links[start..self.offsets[i] as usize]
    }

    /// The link crossed at hop `hop` of route `id`.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range for the route.
    #[inline]
    pub fn link_at(&self, id: RouteId, hop: usize) -> LinkId {
        self.links_of(id)[hop]
    }

    /// Number of distinct routes interned.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no route has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates over the canonical handles of all interned routes, in id
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<RoutePath>> {
        self.routes.iter()
    }

    // Introspection for the shared invariant layer
    // ([`crate::invariants::check_route_table`]). The map walks below are
    // verification-only: they decide a deterministic pass/fail
    // conjunction and never feed simulation state or output, so the
    // HashMap iteration order cannot reach results (see dps-lint.allow).

    /// CSR end-offsets, one per interned route.
    pub(crate) fn csr_offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flattened hop links of all routes.
    pub(crate) fn csr_links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of content-dedup entries (must equal [`RouteTable::len`]).
    pub(crate) fn content_entries(&self) -> usize {
        self.by_content.len()
    }

    /// First content-dedup entry whose id is out of range or whose
    /// canonical route differs structurally from the entry's key.
    pub(crate) fn find_broken_content_entry(&self) -> Option<(Arc<RoutePath>, RouteId)> {
        self.by_content.iter().find_map(|(route, &id)| {
            let broken = match self.routes.get(id.index()) {
                Some(canonical) => canonical.links() != route.links(),
                None => true,
            };
            broken.then(|| (route.clone(), id))
        })
    }

    /// First pointer-fast-path entry mapping to an out-of-range id.
    pub(crate) fn find_invalid_ptr_entry(&self) -> Option<RouteId> {
        self.by_ptr
            .values()
            .copied()
            .find(|id| id.index() >= self.routes.len())
    }

    /// Pinned-alias usage: `(pinned, bound)` with `pinned ≤ bound` the
    /// memory-bound invariant of the pointer fast path.
    pub(crate) fn pin_usage(&self) -> (usize, usize) {
        (self.pinned.len(), 4 * self.routes.len() + Self::PIN_SLACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(links: &[u32]) -> Arc<RoutePath> {
        RoutePath::from_links_unchecked(links.iter().map(|&l| LinkId(l)).collect()).shared()
    }

    #[test]
    fn interning_is_idempotent_per_arc() {
        let mut table = RouteTable::new();
        let r = route(&[0, 1, 2]);
        let a = table.intern(&r);
        let b = table.intern(&r);
        assert_eq!(a, b);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn structurally_equal_routes_collapse_across_arcs() {
        let mut table = RouteTable::new();
        let a = table.intern(&route(&[3, 4]));
        let b = table.intern(&route(&[3, 4]));
        let c = table.intern(&route(&[4, 3]));
        assert_eq!(a, b, "same links behind different Arcs must dedup");
        assert_ne!(a, c);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn csr_lookup_matches_route_path() {
        let mut table = RouteTable::new();
        let routes = [route(&[5]), route(&[0, 1, 2, 3]), route(&[2, 2])];
        let ids = table.intern_all(routes.iter());
        for (r, &id) in routes.iter().zip(&ids) {
            assert_eq!(table.len_of(id), r.len());
            assert_eq!(table.links_of(id), r.links());
            for hop in 0..r.len() {
                assert_eq!(Some(table.link_at(id, hop)), r.hop(hop));
            }
            assert_eq!(table.get(id).links(), r.links());
        }
    }

    #[test]
    fn dedup_survives_dropping_the_original_arc() {
        // A recycled allocation address must not alias a different route:
        // the table pins every Arc it has mapped by pointer.
        let mut table = RouteTable::new();
        for i in 0..64u32 {
            let r = route(&[i, i + 1]);
            let id = table.intern(&r);
            assert_eq!(table.links_of(id), r.links());
            drop(r);
        }
        assert_eq!(table.len(), 64);
        for i in 0..64u32 {
            let id = table.intern(&route(&[i, i + 1]));
            assert_eq!(id.index(), i as usize, "content dedup must survive drops");
        }
        assert_eq!(table.len(), 64);
    }

    #[test]
    fn per_packet_fresh_arcs_do_not_grow_the_table() {
        // A workload wrapping every packet's route in a fresh Arc hits
        // the content-dedup path on each intern; the table must stay
        // O(#distinct routes), not O(#packets).
        let mut table = RouteTable::new();
        let canonical = table.intern(&route(&[0, 1]));
        for _ in 0..10_000 {
            assert_eq!(table.intern(&route(&[0, 1])), canonical);
        }
        assert_eq!(table.len(), 1);
        assert!(
            table.pinned.len() <= 4 * table.routes.len() + RouteTable::PIN_SLACK,
            "pinned {} aliases for {} routes",
            table.pinned.len(),
            table.routes.len()
        );
        assert!(table.by_ptr.len() <= table.pinned.len() + table.routes.len());
    }

    /// Every table state producible through the public API must satisfy
    /// the shared canonicality invariant — including the alias-pinning
    /// cap path exercised by per-packet fresh `Arc`s.
    #[test]
    fn interned_tables_satisfy_the_shared_invariants() {
        use crate::invariants::check_route_table;
        let mut table = RouteTable::new();
        check_route_table(&table).unwrap();
        for i in 0..16u32 {
            table.intern(&route(&[i, i + 1, i + 2]));
            check_route_table(&table).unwrap();
        }
        // Duplicate content behind fresh Arcs: exercises both the
        // alias-pinning path and, once the budget is spent, the pure
        // content-hash path.
        for _ in 0..1_000 {
            table.intern(&route(&[0, 1, 2]));
        }
        check_route_table(&table).unwrap();
        assert_eq!(table.len(), 16);
    }

    #[test]
    fn ids_are_dense_and_display() {
        let mut table = RouteTable::new();
        let a = table.intern(&route(&[0]));
        let b = table.intern(&route(&[1]));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(b.to_string(), "r1");
        assert_eq!(table.iter().count(), 2);
        assert!(!table.is_empty());
    }
}
