//! Linear interference measures: the matrix `W` of Section 2.
//!
//! `W[e][e'] ∈ [0, 1]` quantifies the relative impact of a transmission on
//! link `e'` onto a transmission on link `e`, with `W[e][e] = 1`. The
//! *interference measure* induced by a load vector `R` is
//! `I = ‖W·R‖∞ = max_e Σ_e' W[e][e']·R(e')`.
//!
//! The matrix is exposed as a trait so substrates can compute entries on
//! demand (SINR affectance is derived from geometry; materializing an `m×m`
//! matrix would defeat the purpose for large networks). Three canonical
//! implementations live here:
//!
//! * [`IdentityInterference`] — packet-routing networks; the measure is the
//!   congestion;
//! * [`CompleteInterference`] — the multiple-access channel; the measure is
//!   the total number of packets;
//! * [`DenseInterference`] — an explicit matrix, used by conflict graphs and
//!   by tests.

use crate::error::ModelError;
use crate::ids::LinkId;
use crate::load::LinkLoad;

/// A linear interference measure `W` over `m` links.
///
/// Implementations must satisfy the paper's two structural requirements,
/// which [`validate`] checks and the property tests enforce:
/// `weight(e, e) == 1` for every link and `weight(e, e') ∈ [0, 1]`.
pub trait InterferenceModel {
    /// Number of links `m` the matrix is defined over.
    fn num_links(&self) -> usize;

    /// The entry `W[on][from]`: how much a transmission on `from` disturbs
    /// a simultaneous transmission on `on`.
    fn weight(&self, on: LinkId, from: LinkId) -> f64;

    /// The row product `(W·R)(on) = Σ_e' W[on][e']·R(e')`.
    ///
    /// The default iterates the support of `load`; implementations with
    /// structure (identity, all-ones) override it with O(1) versions.
    fn row_load(&self, on: LinkId, load: &LinkLoad) -> f64 {
        load.support()
            .map(|(from, r)| self.weight(on, from) * r)
            .sum()
    }

    /// The interference measure `I = ‖W·R‖∞`.
    ///
    /// The default takes the maximum of [`InterferenceModel::row_load`] over
    /// all rows. Models where only rows in the support can attain the
    /// maximum may override this with a restriction to the support.
    fn measure(&self, load: &LinkLoad) -> f64 {
        (0..self.num_links() as u32)
            .map(|e| self.row_load(LinkId(e), load))
            .fold(0.0, f64::max)
    }
}

macro_rules! impl_interference_for_wrapper {
    ($($wrapper:ty),*) => {$(
        impl<M: InterferenceModel + ?Sized> InterferenceModel for $wrapper {
            fn num_links(&self) -> usize {
                (**self).num_links()
            }
            fn weight(&self, on: LinkId, from: LinkId) -> f64 {
                (**self).weight(on, from)
            }
            fn row_load(&self, on: LinkId, load: &LinkLoad) -> f64 {
                (**self).row_load(on, load)
            }
            fn measure(&self, load: &LinkLoad) -> f64 {
                (**self).measure(load)
            }
        }
    )*};
}

impl_interference_for_wrapper!(&M, Box<M>, std::sync::Arc<M>);

/// Checks the structural invariants of an interference model:
/// unit diagonal and entries within `[0, 1]`.
///
/// Intended for tests and debug assertions; cost is `O(m²)`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidWeight`] naming the first offending entry.
pub fn validate<M: InterferenceModel + ?Sized>(model: &M) -> Result<(), ModelError> {
    let m = model.num_links() as u32;
    for on in 0..m {
        for from in 0..m {
            let w = model.weight(LinkId(on), LinkId(from));
            let ok = if on == from {
                (w - 1.0).abs() < 1e-12
            } else {
                (0.0..=1.0).contains(&w)
            };
            if !ok || !w.is_finite() {
                return Err(ModelError::InvalidWeight {
                    on: LinkId(on),
                    from: LinkId(from),
                    value: w,
                });
            }
        }
    }
    Ok(())
}

/// `W = identity`: links do not interfere with each other. Models classic
/// store-and-forward packet-routing networks; the measure is the congestion.
#[derive(Clone, Copy, Debug)]
pub struct IdentityInterference {
    num_links: usize,
}

impl IdentityInterference {
    /// Creates the identity model over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        IdentityInterference { num_links }
    }
}

impl InterferenceModel for IdentityInterference {
    fn num_links(&self) -> usize {
        self.num_links
    }

    fn weight(&self, on: LinkId, from: LinkId) -> f64 {
        if on == from {
            1.0
        } else {
            0.0
        }
    }

    fn row_load(&self, on: LinkId, load: &LinkLoad) -> f64 {
        load.get(on)
    }

    fn measure(&self, load: &LinkLoad) -> f64 {
        load.max()
    }
}

/// `W = all-ones`: every transmission disturbs every other. Models the
/// multiple-access channel; the measure is the total number of packets.
#[derive(Clone, Copy, Debug)]
pub struct CompleteInterference {
    num_links: usize,
}

impl CompleteInterference {
    /// Creates the all-ones model over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        CompleteInterference { num_links }
    }
}

impl InterferenceModel for CompleteInterference {
    fn num_links(&self) -> usize {
        self.num_links
    }

    fn weight(&self, _on: LinkId, _from: LinkId) -> f64 {
        1.0
    }

    fn row_load(&self, _on: LinkId, load: &LinkLoad) -> f64 {
        load.total()
    }

    fn measure(&self, load: &LinkLoad) -> f64 {
        load.total()
    }
}

/// An explicit `m×m` interference matrix.
///
/// Used by conflict-graph substrates (whose entries are 0/1 and known in
/// advance) and by tests. Construction validates the paper's structural
/// invariants.
#[derive(Clone, Debug)]
pub struct DenseInterference {
    num_links: usize,
    /// Row-major `num_links × num_links` entries.
    entries: Vec<f64>,
}

impl DenseInterference {
    /// Creates a dense matrix from row-major `entries`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidWeight`] if the diagonal is not one or
    /// any entry falls outside `[0, 1]`; returns
    /// [`ModelError::InvalidConfig`] if `entries` has the wrong length.
    pub fn from_rows(num_links: usize, entries: Vec<f64>) -> Result<Self, ModelError> {
        if entries.len() != num_links * num_links {
            return Err(ModelError::InvalidConfig(format!(
                "expected {} entries for a {num_links}x{num_links} matrix, got {}",
                num_links * num_links,
                entries.len()
            )));
        }
        let model = DenseInterference { num_links, entries };
        validate(&model)?;
        Ok(model)
    }

    /// Creates the matrix from a per-entry function, forcing the diagonal
    /// to one and clamping entries into `[0, 1]`.
    pub fn from_fn<F>(num_links: usize, mut weight: F) -> Self
    where
        F: FnMut(LinkId, LinkId) -> f64,
    {
        let mut entries = vec![0.0; num_links * num_links];
        for on in 0..num_links {
            for from in 0..num_links {
                entries[on * num_links + from] = if on == from {
                    1.0
                } else {
                    weight(LinkId(on as u32), LinkId(from as u32)).clamp(0.0, 1.0)
                };
            }
        }
        DenseInterference { num_links, entries }
    }
}

impl InterferenceModel for DenseInterference {
    fn num_links(&self) -> usize {
        self.num_links
    }

    fn weight(&self, on: LinkId, from: LinkId) -> f64 {
        self.entries[on.index() * self.num_links + from.index()]
    }

    fn row_load(&self, on: LinkId, load: &LinkLoad) -> f64 {
        let row = &self.entries[on.index() * self.num_links..(on.index() + 1) * self.num_links];
        row.iter()
            .enumerate()
            .map(|(from, w)| w * load.get(LinkId(from as u32)))
            .sum()
    }
}

/// Computes the average interference measure per slot of a sequence of
/// per-slot loads — the quantity the injection-rate definitions bound.
pub fn mean_measure<M: InterferenceModel + ?Sized>(model: &M, loads: &[LinkLoad]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mut sum = LinkLoad::new(model.num_links());
    for load in loads {
        sum.merge(load);
    }
    model.measure(&sum) / loads.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load3(values: [f64; 3]) -> LinkLoad {
        let mut load = LinkLoad::new(3);
        for (i, v) in values.into_iter().enumerate() {
            load.set(LinkId(i as u32), v);
        }
        load
    }

    #[test]
    fn identity_measure_is_congestion() {
        let model = IdentityInterference::new(3);
        let load = load3([2.0, 5.0, 1.0]);
        assert_eq!(model.measure(&load), 5.0);
        assert_eq!(model.row_load(LinkId(1), &load), 5.0);
        validate(&model).unwrap();
    }

    #[test]
    fn complete_measure_is_total() {
        let model = CompleteInterference::new(3);
        let load = load3([2.0, 5.0, 1.0]);
        assert_eq!(model.measure(&load), 8.0);
        validate(&model).unwrap();
    }

    #[test]
    fn dense_matrix_row_products() {
        let model = DenseInterference::from_rows(
            2,
            vec![
                1.0, 0.5, //
                0.25, 1.0,
            ],
        )
        .unwrap();
        let mut load = LinkLoad::new(2);
        load.set(LinkId(0), 2.0);
        load.set(LinkId(1), 4.0);
        assert_eq!(model.row_load(LinkId(0), &load), 2.0 + 0.5 * 4.0);
        assert_eq!(model.row_load(LinkId(1), &load), 0.25 * 2.0 + 4.0);
        assert_eq!(model.measure(&load), 4.5);
    }

    #[test]
    fn dense_matrix_rejects_bad_diagonal() {
        let err = DenseInterference::from_rows(2, vec![0.5, 0.0, 0.0, 1.0]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidWeight { .. }));
    }

    #[test]
    fn dense_matrix_rejects_out_of_range_entry() {
        let err = DenseInterference::from_rows(2, vec![1.0, 1.5, 0.0, 1.0]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidWeight {
                value, ..
            } if value == 1.5
        ));
    }

    #[test]
    fn dense_matrix_rejects_wrong_length() {
        let err = DenseInterference::from_rows(2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidConfig(_)));
    }

    #[test]
    fn from_fn_clamps_and_fixes_diagonal() {
        let model = DenseInterference::from_fn(2, |_, _| 7.0);
        validate(&model).unwrap();
        assert_eq!(model.weight(LinkId(0), LinkId(1)), 1.0);
        assert_eq!(model.weight(LinkId(0), LinkId(0)), 1.0);
    }

    #[test]
    fn measure_of_empty_load_is_zero() {
        let model = CompleteInterference::new(4);
        assert_eq!(model.measure(&LinkLoad::new(4)), 0.0);
    }

    #[test]
    fn mean_measure_averages_over_slots() {
        let model = IdentityInterference::new(2);
        let slot1 = {
            let mut l = LinkLoad::new(2);
            l.set(LinkId(0), 2.0);
            l
        };
        let slot2 = {
            let mut l = LinkLoad::new(2);
            l.set(LinkId(0), 4.0);
            l
        };
        assert_eq!(mean_measure(&model, &[slot1, slot2]), 3.0);
        assert_eq!(mean_measure(&model, &[]), 0.0);
    }

    #[test]
    fn default_measure_agrees_with_specialized() {
        // Wrap identity in a type that only provides `weight` so the default
        // `measure` path is exercised.
        struct Slow(usize);
        impl InterferenceModel for Slow {
            fn num_links(&self) -> usize {
                self.0
            }
            fn weight(&self, on: LinkId, from: LinkId) -> f64 {
                if on == from {
                    1.0
                } else {
                    0.0
                }
            }
        }
        let load = load3([2.0, 5.0, 1.0]);
        assert_eq!(
            Slow(3).measure(&load),
            IdentityInterference::new(3).measure(&load)
        );
    }
}
