//! Struct-of-arrays packet storage: the columnar data plane's packet
//! half.
//!
//! The frame protocol's slot loop touches three facts about a packet —
//! its route, its current hop, its identity — thousands of times per
//! frame, but the [`crate::packet::Packet`] object optimises for the
//! injection boundary (an owned `Arc` route handle). A [`PacketStore`]
//! keeps each fact in its own dense column, indexed by a [`PacketRef`]:
//! protocols hold plain `u32` index lists (`active`, per-link failed
//! buffers), moving a packet between lists moves four bytes, and the
//! hot request/attempt building loops stream over contiguous memory
//! instead of chasing `Arc`s. A free list recycles slots, so steady
//! state allocates nothing.

use crate::ids::PacketId;
use crate::route_table::RouteId;

/// Dense index of a live packet in a [`PacketStore`].
///
/// Valid from [`PacketStore::insert`] until the matching
/// [`PacketStore::free`]; freed refs are recycled for later packets, so
/// holding one across a `free` is a logic error. Debug builds assert
/// against double-frees; reads through a recycled ref are not
/// detectable and simply observe the new occupant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketRef(pub u32);

impl PacketRef {
    /// The slot index as a `usize`, for indexing the store's columns.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a stored packet currently lives in the frame protocol's
/// lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PacketState {
    /// Injected, waiting for the next frame to begin.
    Queued,
    /// Travelling in the main phase (never failed).
    Active,
    /// In a link's failed buffer, advancing via clean-up phases.
    Failed,
    /// Reached its destination; the slot is freed at the next rebuild.
    Delivered,
}

/// Struct-of-arrays storage of live packets: parallel columns for id,
/// route, injection slot, current hop and lifecycle state, plus a free
/// list of recycled slots.
#[derive(Clone, Debug, Default)]
pub struct PacketStore {
    ids: Vec<PacketId>,
    routes: Vec<RouteId>,
    injected_at: Vec<u64>,
    hops: Vec<u32>,
    states: Vec<PacketState>,
    free: Vec<u32>,
}

impl PacketStore {
    /// An empty store.
    pub fn new() -> Self {
        PacketStore::default()
    }

    /// Inserts a packet (state [`PacketState::Queued`], hop 0) and
    /// returns its dense ref, recycling a freed slot when one exists.
    pub fn insert(&mut self, id: PacketId, route: RouteId, injected_at: u64) -> PacketRef {
        match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.ids[i] = id;
                self.routes[i] = route;
                self.injected_at[i] = injected_at;
                self.hops[i] = 0;
                self.states[i] = PacketState::Queued;
                PacketRef(slot)
            }
            None => {
                let slot = self.ids.len() as u32;
                self.ids.push(id);
                self.routes.push(route);
                self.injected_at.push(injected_at);
                self.hops.push(0);
                self.states.push(PacketState::Queued);
                PacketRef(slot)
            }
        }
    }

    /// Releases a packet's slot for reuse. The ref (and any copy of it)
    /// must not be used afterwards.
    pub fn free(&mut self, p: PacketRef) {
        debug_assert!(p.index() < self.ids.len(), "freeing unknown ref {p:?}");
        debug_assert!(!self.free.contains(&p.0), "double free of {p:?}");
        self.free.push(p.0);
    }

    /// The packet's unique id.
    #[inline]
    pub fn id(&self, p: PacketRef) -> PacketId {
        self.ids[p.index()]
    }

    /// The packet's interned route.
    #[inline]
    pub fn route(&self, p: PacketRef) -> RouteId {
        self.routes[p.index()]
    }

    /// The slot in which the packet entered the system.
    #[inline]
    pub fn injected_at(&self, p: PacketRef) -> u64 {
        self.injected_at[p.index()]
    }

    /// The packet's current hop (0-based; the next link to cross).
    #[inline]
    pub fn hop(&self, p: PacketRef) -> usize {
        self.hops[p.index()] as usize
    }

    /// Advances the packet one hop, returning the new hop.
    #[inline]
    pub fn advance(&mut self, p: PacketRef) -> usize {
        let h = &mut self.hops[p.index()];
        *h += 1;
        *h as usize
    }

    /// The packet's lifecycle state.
    #[inline]
    pub fn state(&self, p: PacketRef) -> PacketState {
        self.states[p.index()]
    }

    /// Updates the packet's lifecycle state.
    #[inline]
    pub fn set_state(&mut self, p: PacketRef, state: PacketState) {
        self.states[p.index()] = state;
    }

    /// Number of live (inserted, not freed) packets.
    pub fn live(&self) -> usize {
        self.ids.len() - self.free.len()
    }

    /// Total slots ever allocated (live packets plus the free list) —
    /// the store's high-water mark.
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// Lengths of the five SoA columns, for the shared invariant layer
    /// ([`crate::invariants::check_store`]): all must agree.
    pub(crate) fn column_lens(&self) -> [usize; 5] {
        [
            self.ids.len(),
            self.routes.len(),
            self.injected_at.len(),
            self.hops.len(),
            self.states.len(),
        ]
    }

    /// The recycled-slot free list, for the shared invariant layer.
    pub(crate) fn free_slots(&self) -> &[u32] {
        &self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reads_back_columns() {
        let mut store = PacketStore::new();
        let p = store.insert(PacketId(7), RouteId(3), 42);
        assert_eq!(store.id(p), PacketId(7));
        assert_eq!(store.route(p), RouteId(3));
        assert_eq!(store.injected_at(p), 42);
        assert_eq!(store.hop(p), 0);
        assert_eq!(store.state(p), PacketState::Queued);
        assert_eq!(store.live(), 1);
    }

    #[test]
    fn advance_and_state_transitions() {
        let mut store = PacketStore::new();
        let p = store.insert(PacketId(0), RouteId(0), 0);
        assert_eq!(store.advance(p), 1);
        assert_eq!(store.advance(p), 2);
        assert_eq!(store.hop(p), 2);
        store.set_state(p, PacketState::Failed);
        assert_eq!(store.state(p), PacketState::Failed);
    }

    #[test]
    fn free_list_recycles_slots() {
        let mut store = PacketStore::new();
        let a = store.insert(PacketId(1), RouteId(0), 0);
        let b = store.insert(PacketId(2), RouteId(1), 1);
        store.advance(a);
        store.set_state(a, PacketState::Delivered);
        store.free(a);
        assert_eq!(store.live(), 1);
        let c = store.insert(PacketId(3), RouteId(2), 5);
        // Recycled slot: same index, fully re-initialised.
        assert_eq!(c, a);
        assert_eq!(store.id(c), PacketId(3));
        assert_eq!(store.hop(c), 0);
        assert_eq!(store.state(c), PacketState::Queued);
        assert_eq!(store.live(), 2);
        assert_eq!(store.capacity(), 2);
        assert_eq!(store.id(b), PacketId(2), "other slots untouched");
    }

    /// The shared invariant layer must accept every state the store's
    /// own API can produce: fresh slots, recycled slots, interleaved
    /// frees — with the live set tracked externally, as protocols do.
    #[test]
    fn store_states_satisfy_the_shared_invariants() {
        use crate::invariants::{check_store, check_store_partition};
        let mut store = PacketStore::new();
        let mut live = Vec::new();
        for i in 0..6 {
            live.push(store.insert(PacketId(i), RouteId(0), i));
            check_store_partition(&store, live.iter().copied()).unwrap();
        }
        // Free every other packet, then recycle the slots.
        for i in (0..6).step_by(2).rev() {
            let p = live.remove(i);
            store.set_state(p, PacketState::Delivered);
            store.free(p);
            check_store_partition(&store, live.iter().copied()).unwrap();
        }
        for i in 0..3 {
            live.push(store.insert(PacketId(100 + i), RouteId(1), 9));
            check_store(&store).unwrap();
            check_store_partition(&store, live.iter().copied()).unwrap();
        }
        assert_eq!(store.capacity(), 6, "recycling must not grow the store");
    }

    #[test]
    fn capacity_is_the_high_water_mark() {
        let mut store = PacketStore::new();
        let refs: Vec<_> = (0..10)
            .map(|i| store.insert(PacketId(i), RouteId(0), i))
            .collect();
        for &p in &refs {
            store.free(p);
        }
        assert_eq!(store.live(), 0);
        assert_eq!(store.capacity(), 10);
        for i in 0..10 {
            store.insert(PacketId(100 + i), RouteId(0), 0);
        }
        assert_eq!(store.capacity(), 10, "steady state allocates nothing");
        assert_eq!(store.live(), 10);
    }
}
