//! Region-sharded views of the packet plane: [`RegionMap`] partitions,
//! [`ActiveLinkSet`] occupancy tracking, and shard-aware invariants.
//!
//! The frame protocol's per-slot bookkeeping historically scanned all
//! `m` links (e.g. the clean-up selection walked every failed buffer,
//! empty or not), which is fine at `m = 10³` and ruinous at `m = 10⁵`
//! where almost every link is idle almost always. This module provides
//! the two pieces that make per-slot work scale with *active* links
//! instead:
//!
//! * [`RegionMap`] — a contiguous partition of the link index space into
//!   regions, with sharded views of a [`PacketStore`]/[`RouteTable`]
//!   pair ([`RegionMap::shard_live`], [`RegionMap::routes_through`]) and
//!   a shard-aware extension of the store-partition invariant
//!   ([`check_region_partition`]);
//! * [`ActiveLinkSet`] — a region-summarized occupancy bitset over the
//!   links: `O(1)` insert/remove, and iteration that visits exactly the
//!   occupied links **in ascending link order**, skipping empty regions
//!   wholesale.
//!
//! Ascending order is a hard requirement, not a nicety: the clean-up
//! selection of [`crate::dynamic::DynamicProtocol`] draws one RNG coin
//! per non-empty failed buffer in ascending link order, so a tracker
//! that visited links in any other order (or visited empty buffers)
//! would shift the RNG stream and change every downstream decision. The
//! golden-fingerprint tests in `dynamic::frame` pin this equivalence.
//!
//! Regions are *contiguous* index ranges by construction. That choice is
//! what lets region-by-region iteration preserve the global link order —
//! an arbitrary (e.g. geometric) partition would interleave regions and
//! break the RNG-stream guarantee. Callers that want spatially coherent
//! regions should assign link indices spatially at instance-construction
//! time; the map then shards space and index order simultaneously.

use crate::ids::LinkId;
use crate::invariants::{check_store_partition, InvariantViolation};
use crate::route_table::{RouteId, RouteTable};
use crate::store::{PacketRef, PacketStore};

/// A contiguous partition of the link index space `0..num_links` into
/// regions; region `r` covers `boundaries[r]..boundaries[r+1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    num_links: usize,
    /// `num_regions + 1` monotone boundaries; first `0`, last `num_links`.
    boundaries: Vec<u32>,
}

impl RegionMap {
    /// A balanced contiguous partition into `num_regions` regions (the
    /// first `num_links % num_regions` regions hold one extra link).
    ///
    /// # Panics
    ///
    /// Panics if `num_regions == 0`, or if `num_links > 0` but there are
    /// more regions than links.
    pub fn contiguous(num_links: usize, num_regions: usize) -> Self {
        assert!(num_regions > 0, "a RegionMap needs at least one region");
        assert!(
            num_links == 0 || num_regions <= num_links,
            "more regions ({num_regions}) than links ({num_links})"
        );
        let base = num_links / num_regions;
        let extra = num_links % num_regions;
        let mut boundaries = Vec::with_capacity(num_regions + 1);
        let mut next = 0usize;
        boundaries.push(0);
        for r in 0..num_regions {
            next += base + usize::from(r < extra);
            boundaries.push(next as u32);
        }
        RegionMap {
            num_links,
            boundaries,
        }
    }

    /// The default region count for `num_links` links: one region per 64
    /// links (matching the occupancy words of [`ActiveLinkSet`]), at
    /// least one, at most 1024 — so the per-slot region scan stays
    /// trivially cheap even at `m = 10⁵`.
    pub fn default_regions(num_links: usize) -> usize {
        (num_links / 64).clamp(1, 1024)
    }

    /// Number of links the map partitions.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The region containing `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn region_of(&self, link: LinkId) -> usize {
        assert!(
            link.index() < self.num_links,
            "link {link} out of range ({} links)",
            self.num_links
        );
        // partition_point: first boundary strictly above the link index
        // is the end of its region.
        self.boundaries.partition_point(|&b| b <= link.0) - 1
    }

    /// The contiguous link index range of `region`.
    pub fn links_in(&self, region: usize) -> std::ops::Range<u32> {
        self.boundaries[region]..self.boundaries[region + 1]
    }

    /// Splits an ascending list of link ids into the non-empty
    /// per-region index spans, in region (hence link) order: span `i`
    /// covers the consecutive entries of `links` whose links fall in
    /// the `i`-th occupied region. Concatenating the spans reproduces
    /// `0..links.len()`, which is what lets a per-receiver kernel fan
    /// the spans over threads and splice the per-span results back
    /// together bit-for-bit in the original order.
    ///
    /// # Panics
    ///
    /// Panics if `links` is not strictly ascending or contains a link
    /// outside `0..num_links`.
    pub fn shard_sorted(&self, links: &[u32]) -> Vec<std::ops::Range<usize>> {
        assert!(
            links.windows(2).all(|w| w[0] < w[1]),
            "shard_sorted requires strictly ascending link ids"
        );
        let mut spans = Vec::new();
        let mut at = 0usize;
        for region in 0..self.num_regions() {
            let end_link = self.boundaries[region + 1];
            let end = at + links[at..].partition_point(|&l| l < end_link);
            if end > at {
                spans.push(at..end);
            }
            at = end;
        }
        assert!(
            at == links.len(),
            "link {} out of range ({} links)",
            links[at],
            self.num_links
        );
        spans
    }

    /// Shards a live packet set by the region of each packet's *current*
    /// link (`routes.link_at(route, hop)`): the per-region
    /// [`PacketStore`] view the region-scaled protocol paths work from.
    /// A delivered packet (hop past the end) is sharded by its final
    /// link, so every live ref lands in exactly one shard.
    pub fn shard_live<I>(
        &self,
        store: &PacketStore,
        routes: &RouteTable,
        live: I,
    ) -> Vec<Vec<PacketRef>>
    where
        I: IntoIterator<Item = PacketRef>,
    {
        let mut shards = vec![Vec::new(); self.num_regions()];
        for pkt in live {
            let link = current_link(store, routes, pkt);
            shards[self.region_of(link)].push(pkt);
        }
        shards
    }

    /// The routes of `routes` crossing `region` (at least one link of the
    /// route lies in the region), in route-id order: the per-region
    /// [`RouteTable`] view.
    pub fn routes_through(&self, routes: &RouteTable, region: usize) -> Vec<RouteId> {
        let range = self.links_in(region);
        (0..routes.len() as u32)
            .map(RouteId)
            .filter(|&id| routes.links_of(id).iter().any(|l| range.contains(&l.0)))
            .collect()
    }
}

/// The link a stored packet currently waits on (its final link once
/// delivered, so delivered-but-not-yet-freed packets still shard).
fn current_link(store: &PacketStore, routes: &RouteTable, pkt: PacketRef) -> LinkId {
    let route = store.route(pkt);
    let len = routes.len_of(route);
    let hop = store.hop(pkt).min(len.saturating_sub(1));
    routes.link_at(route, hop)
}

/// The region-sharded face of the store-partition invariant: the shards
/// must agree with `map` (every packet in the shard of its current
/// link), and, chained together, they must satisfy the global
/// [`check_store_partition`] — so sharding neither leaks, duplicates nor
/// misfiles a packet.
///
/// # Errors
///
/// Returns a violation tagged `region-shard` when a packet sits in the
/// wrong shard (or the shard count disagrees with the map), plus
/// everything [`check_store_partition`] reports on the chained shards.
pub fn check_region_partition(
    map: &RegionMap,
    store: &PacketStore,
    routes: &RouteTable,
    shards: &[Vec<PacketRef>],
) -> Result<(), InvariantViolation> {
    if shards.len() != map.num_regions() {
        return Err(InvariantViolation::new(
            "region-shard",
            format!(
                "{} shards for a {}-region map",
                shards.len(),
                map.num_regions()
            ),
        ));
    }
    for (region, shard) in shards.iter().enumerate() {
        for &pkt in shard {
            let link = current_link(store, routes, pkt);
            let actual = map.region_of(link);
            if actual != region {
                return Err(InvariantViolation::new(
                    "region-shard",
                    format!(
                        "packet {pkt:?} on link {link} belongs to region {actual}, \
                         found in shard {region}"
                    ),
                ));
            }
        }
    }
    // Globally, the concatenated shards must still partition the store.
    check_store_partition(store, shards.iter().flatten().copied())
}

/// An occupancy set over the links of a [`RegionMap`]: a bitset word per
/// 64 links plus a per-region occupancy counter, so iteration skips
/// empty regions wholesale and still yields occupied links in ascending
/// link order.
#[derive(Clone, Debug)]
pub struct ActiveLinkSet {
    map: RegionMap,
    /// One bit per link, `words[l / 64] >> (l % 64)`.
    words: Vec<u64>,
    /// Occupied-link count per region of `map`.
    region_count: Vec<u32>,
    len: usize,
}

impl ActiveLinkSet {
    /// An empty set over the links of `map`.
    pub fn new(map: RegionMap) -> Self {
        let words = vec![0u64; map.num_links().div_ceil(64)];
        let region_count = vec![0u32; map.num_regions()];
        ActiveLinkSet {
            map,
            words,
            region_count,
            len: 0,
        }
    }

    /// The region map this set summarizes over.
    pub fn region_map(&self) -> &RegionMap {
        &self.map
    }

    /// Number of links currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `link` is in the set.
    pub fn contains(&self, link: LinkId) -> bool {
        self.words[link.index() / 64] & (1u64 << (link.index() % 64)) != 0
    }

    /// Inserts `link`; no-op if already present.
    pub fn insert(&mut self, link: LinkId) {
        let (word, bit) = (link.index() / 64, 1u64 << (link.index() % 64));
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.region_count[self.map.region_of(link)] += 1;
            self.len += 1;
        }
    }

    /// Removes `link`; no-op if absent.
    pub fn remove(&mut self, link: LinkId) {
        let (word, bit) = (link.index() / 64, 1u64 << (link.index() % 64));
        if self.words[word] & bit != 0 {
            self.words[word] &= !bit;
            self.region_count[self.map.region_of(link)] -= 1;
            self.len -= 1;
        }
    }

    /// Appends the set's links to `out` in ascending link order, visiting
    /// only the words of occupied regions: `O(regions + 64·occupied)`
    /// instead of `O(num_links)`.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        for (region, &count) in self.region_count.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let range = self.map.links_in(region);
            let (start, end) = (range.start as usize, range.end as usize);
            let mut link = start;
            while link < end {
                // Mask the current word down to the bits inside both the
                // region and the link range, then drain its set bits.
                let word_idx = link / 64;
                let lo = link % 64;
                let hi = (end - word_idx * 64).min(64);
                let mut bits = self.words[word_idx] >> lo << lo;
                if hi < 64 {
                    bits &= (1u64 << hi) - 1;
                }
                while bits != 0 {
                    let offset = bits.trailing_zeros() as usize;
                    out.push((word_idx * 64 + offset) as u32);
                    bits &= bits - 1;
                }
                link = (word_idx + 1) * 64;
            }
        }
    }

    /// The set's links in ascending order (allocating convenience over
    /// [`ActiveLinkSet::collect_into`]).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PacketId;
    use crate::path::RoutePath;

    #[test]
    fn contiguous_map_covers_every_link_once() {
        for (links, regions) in [(10, 3), (64, 1), (65, 2), (1000, 7), (1, 1)] {
            let map = RegionMap::contiguous(links, regions);
            assert_eq!(map.num_regions(), regions);
            let mut covered = 0usize;
            for r in 0..regions {
                let range = map.links_in(r);
                for l in range.clone() {
                    assert_eq!(map.region_of(LinkId(l)), r, "{links}/{regions} link {l}");
                }
                covered += range.len();
            }
            assert_eq!(covered, links);
        }
    }

    #[test]
    fn balanced_split_is_off_by_at_most_one() {
        let map = RegionMap::contiguous(10, 3);
        let sizes: Vec<usize> = (0..3).map(|r| map.links_in(r).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
    }

    #[test]
    fn default_regions_are_clamped() {
        assert_eq!(RegionMap::default_regions(0), 1);
        assert_eq!(RegionMap::default_regions(63), 1);
        assert_eq!(RegionMap::default_regions(640), 10);
        assert_eq!(RegionMap::default_regions(1 << 20), 1024);
    }

    #[test]
    #[should_panic(expected = "more regions")]
    fn rejects_more_regions_than_links() {
        let _ = RegionMap::contiguous(2, 3);
    }

    #[test]
    fn shard_sorted_partitions_ascending_lists() {
        let map = RegionMap::contiguous(100, 4);
        // Mixed occupancy: empty first region, entries on both sides of
        // a boundary, a lone trailing entry.
        let links = [25u32, 26, 49, 50, 74, 99];
        let spans = map.shard_sorted(&links);
        assert_eq!(spans, vec![0..3, 3..5, 5..6]);
        let mut covered = Vec::new();
        for span in &spans {
            let region = map.region_of(LinkId(links[span.start]));
            for i in span.clone() {
                assert_eq!(map.region_of(LinkId(links[i])), region);
                covered.push(i);
            }
        }
        assert_eq!(covered, (0..links.len()).collect::<Vec<_>>());
        assert!(map.shard_sorted(&[]).is_empty());
        // Every link in one region collapses to a single span.
        assert_eq!(map.shard_sorted(&[0, 1, 2]), vec![0..3]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn shard_sorted_rejects_unsorted_input() {
        let _ = RegionMap::contiguous(10, 2).shard_sorted(&[3, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_sorted_rejects_out_of_range_links() {
        let _ = RegionMap::contiguous(10, 2).shard_sorted(&[3, 10]);
    }

    #[test]
    fn active_set_iterates_in_ascending_order_and_skips_empty_regions() {
        let map = RegionMap::contiguous(300, 4);
        let mut set = ActiveLinkSet::new(map);
        // Insert out of order, with duplicates, across region boundaries.
        for l in [299u32, 0, 75, 76, 0, 150, 299, 63, 64] {
            set.insert(LinkId(l));
        }
        assert_eq!(set.len(), 7);
        assert!(set.contains(LinkId(75)));
        assert!(!set.contains(LinkId(1)));
        assert_eq!(set.to_vec(), vec![0, 63, 64, 75, 76, 150, 299]);
        set.remove(LinkId(75));
        set.remove(LinkId(75));
        set.remove(LinkId(0));
        assert_eq!(set.to_vec(), vec![63, 64, 76, 150, 299]);
        assert_eq!(set.len(), 5);
        for l in set.to_vec() {
            set.remove(LinkId(l));
        }
        assert!(set.is_empty());
        assert_eq!(set.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn active_set_matches_a_reference_scan_across_patterns() {
        // Region sizes that straddle word boundaries in awkward ways.
        for (links, regions) in [(1usize, 1usize), (64, 1), (130, 3), (257, 5)] {
            let map = RegionMap::contiguous(links, regions);
            let mut set = ActiveLinkSet::new(map);
            let mut reference = vec![false; links];
            // A deterministic pseudo-random insert/remove pattern.
            let mut x = 0x9e3779b97f4a7c15u64;
            for step in 0..4 * links {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let l = (x >> 33) as usize % links;
                if step % 3 == 0 {
                    set.remove(LinkId(l as u32));
                    reference[l] = false;
                } else {
                    set.insert(LinkId(l as u32));
                    reference[l] = true;
                }
            }
            let expected: Vec<u32> = (0..links as u32)
                .filter(|&l| reference[l as usize])
                .collect();
            assert_eq!(set.to_vec(), expected, "{links}/{regions}");
            assert_eq!(set.len(), expected.len());
        }
    }

    fn two_region_setup() -> (RegionMap, PacketStore, RouteTable, Vec<PacketRef>) {
        let map = RegionMap::contiguous(4, 2);
        let mut routes = RouteTable::new();
        // Route 0 crosses both regions; route 1 stays in region 1.
        let r0 =
            routes.intern(&RoutePath::from_links_unchecked(vec![LinkId(0), LinkId(3)]).shared());
        let r1 = routes.intern(&RoutePath::from_links_unchecked(vec![LinkId(2)]).shared());
        let mut store = PacketStore::new();
        let a = store.insert(PacketId(0), r0, 0); // hop 0 → link 0 → region 0
        let b = store.insert(PacketId(1), r0, 0);
        store.advance(b); // hop 1 → link 3 → region 1
        let c = store.insert(PacketId(2), r1, 0); // link 2 → region 1
        (map, store, routes, vec![a, b, c])
    }

    #[test]
    fn shard_live_files_packets_by_current_link_region() {
        let (map, store, routes, live) = two_region_setup();
        let shards = map.shard_live(&store, &routes, live.iter().copied());
        assert_eq!(shards[0], vec![live[0]]);
        assert_eq!(shards[1], vec![live[1], live[2]]);
        check_region_partition(&map, &store, &routes, &shards).unwrap();
    }

    #[test]
    fn misfiled_and_leaked_packets_are_caught() {
        let (map, store, routes, live) = two_region_setup();
        // Swap a packet into the wrong shard: tagged region-shard.
        let wrong = vec![vec![live[1]], vec![live[0], live[2]]];
        let err = check_region_partition(&map, &store, &routes, &wrong).unwrap_err();
        assert_eq!(err.invariant, "region-shard");
        // Drop a packet: the chained global partition check fires.
        let leaky = vec![vec![live[0]], vec![live[2]]];
        let err = check_region_partition(&map, &store, &routes, &leaky).unwrap_err();
        assert_eq!(err.invariant, "store-partition");
        // Wrong shard arity is rejected outright.
        let err = check_region_partition(&map, &store, &routes, &[]).unwrap_err();
        assert_eq!(err.invariant, "region-shard");
    }

    #[test]
    fn routes_through_lists_crossing_routes_in_id_order() {
        let (map, _store, routes, _live) = two_region_setup();
        assert_eq!(map.routes_through(&routes, 0), vec![RouteId(0)]);
        assert_eq!(map.routes_through(&routes, 1), vec![RouteId(0), RouteId(1)]);
    }

    #[test]
    fn delivered_packets_shard_by_their_final_link() {
        let (map, mut store, routes, live) = two_region_setup();
        // Drive packet a past the end of its 2-link route.
        store.advance(live[0]);
        store.advance(live[0]);
        let shards = map.shard_live(&store, &routes, live.iter().copied());
        assert!(shards[1].contains(&live[0]), "final link 3 is region 1");
        check_region_partition(&map, &store, &routes, &shards).unwrap();
    }
}
