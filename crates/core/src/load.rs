//! Link-load vectors: the `R` in the interference measure `I = ‖W·R‖∞`.
//!
//! A [`LinkLoad`] maps every link to a non-negative real (usually a packet
//! count, occasionally an expectation such as the `F` of Section 2.1).
//! Storage is dense — experiments use networks of at most a few thousand
//! links — which keeps floating-point summation order deterministic, a
//! requirement for reproducible experiment tables.

use crate::ids::LinkId;
use serde::{Deserialize, Serialize};

/// A dense vector of non-negative per-link loads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkLoad {
    counts: Vec<f64>,
}

impl LinkLoad {
    /// Creates an all-zero load vector over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        LinkLoad {
            counts: vec![0.0; num_links],
        }
    }

    /// Builds a load vector by counting how many of the given routes use
    /// each link (the `R(e)` of Section 2: paths including edge `e`
    /// *somewhere*, with multiplicity).
    pub fn from_paths<'a, I>(num_links: usize, paths: I) -> Self
    where
        I: IntoIterator<Item = &'a crate::path::RoutePath>,
    {
        let mut load = LinkLoad::new(num_links);
        for path in paths {
            for &link in path.links() {
                load.add(link, 1.0);
            }
        }
        load
    }

    /// Builds a load vector counting each given link once per occurrence.
    pub fn from_links<I>(num_links: usize, links: I) -> Self
    where
        I: IntoIterator<Item = LinkId>,
    {
        let mut load = LinkLoad::new(num_links);
        for link in links {
            load.add(link, 1.0);
        }
        load
    }

    /// Number of links the vector is defined over.
    pub fn num_links(&self) -> usize {
        self.counts.len()
    }

    /// The load on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn get(&self, link: LinkId) -> f64 {
        self.counts[link.index()]
    }

    /// Adds `amount` to the load on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range or `amount` would make the load
    /// negative.
    pub fn add(&mut self, link: LinkId, amount: f64) {
        let slot = &mut self.counts[link.index()];
        *slot += amount;
        assert!(*slot >= -1e-9, "load on {link} became negative ({})", *slot);
        if *slot < 0.0 {
            *slot = 0.0;
        }
    }

    /// Sets the load on `link` to `amount`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range or `amount` is negative.
    pub fn set(&mut self, link: LinkId, amount: f64) {
        assert!(amount >= 0.0, "load must be non-negative, got {amount}");
        self.counts[link.index()] = amount;
    }

    /// Scales every entry by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        for c in &mut self.counts {
            *c *= factor;
        }
    }

    /// Adds another load vector entry-wise.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn merge(&mut self, other: &LinkLoad) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge load vectors over different link sets"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total load over all links (`‖R‖₁`).
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Largest single-link load (`‖R‖∞`, the congestion).
    pub fn max(&self) -> f64 {
        self.counts.iter().copied().fold(0.0, f64::max)
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0.0)
    }

    /// Iterator over `(link, load)` pairs with non-zero load, in link order.
    pub fn support(&self) -> impl Iterator<Item = (LinkId, f64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, &c)| (LinkId(i as u32), c))
    }

    /// Number of links with non-zero load.
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0.0).count()
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::RoutePath;

    #[test]
    fn new_load_is_zero() {
        let load = LinkLoad::new(4);
        assert!(load.is_zero());
        assert_eq!(load.total(), 0.0);
        assert_eq!(load.max(), 0.0);
        assert_eq!(load.support_size(), 0);
    }

    #[test]
    fn add_and_get_round_trip() {
        let mut load = LinkLoad::new(3);
        load.add(LinkId(1), 2.5);
        load.add(LinkId(1), 0.5);
        assert_eq!(load.get(LinkId(1)), 3.0);
        assert_eq!(load.get(LinkId(0)), 0.0);
        assert_eq!(load.total(), 3.0);
        assert_eq!(load.max(), 3.0);
    }

    #[test]
    fn from_paths_counts_multiplicity() {
        let p1 = RoutePath::from_links_unchecked(vec![LinkId(0), LinkId(1)]);
        let p2 = RoutePath::from_links_unchecked(vec![LinkId(1), LinkId(2)]);
        let load = LinkLoad::from_paths(3, [&p1, &p2]);
        assert_eq!(load.get(LinkId(0)), 1.0);
        assert_eq!(load.get(LinkId(1)), 2.0);
        assert_eq!(load.get(LinkId(2)), 1.0);
    }

    #[test]
    fn path_revisiting_link_counts_twice() {
        let p = RoutePath::from_links_unchecked(vec![LinkId(0), LinkId(1), LinkId(0)]);
        let load = LinkLoad::from_paths(2, [&p]);
        assert_eq!(load.get(LinkId(0)), 2.0);
    }

    #[test]
    fn support_skips_zero_entries() {
        let mut load = LinkLoad::new(5);
        load.add(LinkId(0), 1.0);
        load.add(LinkId(3), 2.0);
        let support: Vec<_> = load.support().collect();
        assert_eq!(support, vec![(LinkId(0), 1.0), (LinkId(3), 2.0)]);
        assert_eq!(load.support_size(), 2);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = LinkLoad::from_links(3, [LinkId(0), LinkId(1)]);
        let b = LinkLoad::from_links(3, [LinkId(1), LinkId(2)]);
        a.merge(&b);
        a.scale(2.0);
        assert_eq!(a.get(LinkId(0)), 2.0);
        assert_eq!(a.get(LinkId(1)), 4.0);
        assert_eq!(a.get(LinkId(2)), 2.0);
    }

    #[test]
    fn clear_keeps_length() {
        let mut load = LinkLoad::from_links(2, [LinkId(0)]);
        load.clear();
        assert!(load.is_zero());
        assert_eq!(load.num_links(), 2);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_set_panics() {
        let mut load = LinkLoad::new(1);
        load.set(LinkId(0), -1.0);
    }

    #[test]
    #[should_panic(expected = "different link sets")]
    fn merge_length_mismatch_panics() {
        let mut a = LinkLoad::new(2);
        let b = LinkLoad::new(3);
        a.merge(&b);
    }
}
