//! **Algorithm 1** (Section 3): transforming a static algorithm so its
//! schedule length scales linearly in the interference measure, independent
//! of the packet count.
//!
//! A raw algorithm with guarantee `f(n)·I` (such as the uniform-rate
//! scheduler's `O(I·log n)`) deteriorates when an instance is scaled:
//! doubling every request doubles both `I` and `n`, so the schedule more
//! than doubles and throughput *drops*. The transformation exploits that
//! only `m` distinct links exist: random delays split the requests into
//! classes whose measure is at most `χ = 6(ln m + 9)` w.h.p., the base
//! algorithm `A(χ, mχ)` serves each class in a window of `f(mχ)·χ` slots,
//! and failures cascade into the next iteration whose measure bound has
//! halved. After `ξ = ⌈log(I/2φχ·log n)⌉` iterations the residual measure
//! is `O(log n · log m)` and `⌈φ⌉+1` runs of the base algorithm finish it.
//!
//! Theorem 1: the result serves everything within
//! `2·f(mχ)·I + O(log n·f(mχ) + f(n)·log n·log m)` slots with probability
//! at least `1 − 1/n^φ`.

use crate::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// Algorithm 1: wraps a base [`StaticScheduler`] into one whose schedule
/// length is linear in `I` for dense instances.
///
/// ```
/// use dps_core::prelude::*;
///
/// let base = UniformRateScheduler::new();
/// let transformed = DenseTransform::new(base, 64);
/// // The transformed coefficient of I no longer depends on n:
/// assert_eq!(transformed.f_of(100), transformed.f_of(1_000_000));
/// ```
#[derive(Clone, Debug)]
pub struct DenseTransform<S> {
    inner: S,
    m: usize,
    phi: f64,
    chi: f64,
}

impl<S: StaticScheduler> DenseTransform<S> {
    /// Wraps `inner` for a network of significant size `m`, using the
    /// paper's parameters `χ = 6(ln m + 9)` and `φ = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(inner: S, m: usize) -> Self {
        assert!(m > 0, "network size must be positive");
        let chi = 6.0 * ((m as f64).ln() + 9.0);
        DenseTransform {
            inner,
            m,
            phi: 1.0,
            chi,
        }
    }

    /// Overrides the failure-probability exponent `φ` (success probability
    /// is `1 − 1/n^φ`).
    ///
    /// # Panics
    ///
    /// Panics unless `phi >= 1`.
    pub fn with_phi(mut self, phi: f64) -> Self {
        assert!(phi >= 1.0, "phi must be at least 1, got {phi}");
        self.phi = phi;
        self
    }

    /// Overrides the class-measure target `χ`.
    ///
    /// The paper's `6(ln m + 9)` is conservative; the tuned experiment
    /// configurations use a smaller `χ` with the same qualitative
    /// behaviour.
    ///
    /// # Panics
    ///
    /// Panics unless `chi` is positive.
    pub fn with_chi(mut self, chi: f64) -> Self {
        assert!(chi > 0.0, "chi must be positive, got {chi}");
        self.chi = chi;
        self
    }

    /// The class-measure target `χ`.
    pub fn chi(&self) -> f64 {
        self.chi
    }

    /// The wrapped base scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Measure bound of the final-stage executions: `2φχ·ln n`.
    fn final_bound(&self, n: usize) -> f64 {
        2.0 * self.phi * self.chi * (n.max(2) as f64).ln()
    }

    /// Number of halving iterations `ξ` for initial measure bound `i`.
    fn xi(&self, i: f64, n: usize) -> usize {
        let target = self.final_bound(n);
        if i <= target {
            return 0;
        }
        (i / target).log2().ceil().max(0.0) as usize
    }

    /// `n`-bound handed to the per-class base executions: `m·χ`.
    fn class_n(&self) -> usize {
        ((self.m as f64) * self.chi).ceil() as usize
    }

    /// Slot budget of one per-class window: `f(mχ)·χ (+ g)`.
    fn class_window(&self) -> usize {
        self.inner.slots_needed(self.chi, self.class_n())
    }
}

impl<S: StaticScheduler + Clone + Send + 'static> StaticScheduler for DenseTransform<S> {
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let n = requests.len();
        let i = measure_bound.max(1.0);
        let xi = self.xi(i, n);
        let final_bound = self.final_bound(n);
        let mut run = DenseTransformRun {
            requests: requests.to_vec(),
            pending: vec![true; n],
            remaining: n,
            initial_measure: i,
            iter: 0,
            xi,
            classes: VecDeque::new(),
            carry: (0..n).collect(),
            chi: self.chi,
            class_window: self.class_window(),
            final_bound,
            final_budget: self.inner.slots_needed(final_bound, n.max(1)),
            final_rounds_total: self.phi.ceil() as usize + 1,
            final_round: 0,
            in_final: xi == 0,
            inner: None,
            inner_members: Vec::new(),
            outer_to_inner: vec![usize::MAX; n],
            inner_slots_left: 0,
            gave_up: n == 0,
            scheduler: self.inner.clone(),
        };
        run.begin_next_iteration(rng);
        Box::new(run)
    }

    fn f_of(&self, _n: usize) -> f64 {
        // Σ_i ψ_i ≈ 2I/χ windows of `class_window` slots each.
        2.0 * self.class_window() as f64 / self.chi
    }

    fn g_of(&self, n: usize) -> f64 {
        // One extra window per iteration from the ceiling in ψ_i, plus the
        // final executions.
        let iters = 64.0;
        let final_budget = self.inner.slots_needed(self.final_bound(n), n.max(1));
        iters * self.class_window() as f64 + (self.phi.ceil() + 1.0) * final_budget as f64
    }

    fn slots_needed(&self, measure_bound: f64, n: usize) -> usize {
        let i = measure_bound.max(1.0);
        let xi = self.xi(i, n);
        let window = self.class_window();
        let mut slots = 0usize;
        for iter in 1..=xi {
            let psi = (i * 2f64.powi(1 - iter as i32) / self.chi).ceil().max(1.0) as usize;
            slots += psi * window;
        }
        slots
            + (self.phi.ceil() as usize + 1)
                * self.inner.slots_needed(self.final_bound(n), n.max(1))
    }

    fn name(&self) -> &str {
        "dense-transform"
    }
}

struct DenseTransformRun<S> {
    requests: Vec<Request>,
    pending: Vec<bool>,
    remaining: usize,
    initial_measure: f64,
    /// Current halving iteration, 1-based; 0 before the first.
    iter: usize,
    xi: usize,
    /// Delay classes of the current iteration not yet executed.
    classes: VecDeque<Vec<usize>>,
    /// Failures collected during the current iteration (feed the next).
    carry: Vec<usize>,
    chi: f64,
    class_window: usize,
    final_bound: f64,
    final_budget: usize,
    final_rounds_total: usize,
    final_round: usize,
    in_final: bool,
    inner: Option<Box<dyn StaticAlgorithm>>,
    /// Inner request index → outer request index.
    inner_members: Vec<usize>,
    /// Outer request index → inner index (or `usize::MAX`).
    outer_to_inner: Vec<usize>,
    inner_slots_left: usize,
    gave_up: bool,
    scheduler: S,
}

impl<S: StaticScheduler> DenseTransformRun<S> {
    /// Tears down the current inner run, moving unserved members to `carry`.
    fn teardown_inner(&mut self) {
        self.inner = None;
        for &outer in &self.inner_members {
            self.outer_to_inner[outer] = usize::MAX;
            if self.pending[outer] {
                self.carry.push(outer);
            }
        }
        self.inner_members.clear();
    }

    /// Starts the inner run for the member set `members`.
    fn start_inner(
        &mut self,
        members: Vec<usize>,
        bound: f64,
        budget: usize,
        rng: &mut dyn RngCore,
    ) {
        let class_requests: Vec<Request> = members.iter().map(|&o| self.requests[o]).collect();
        for (inner_idx, &outer) in members.iter().enumerate() {
            self.outer_to_inner[outer] = inner_idx;
        }
        self.inner = Some(self.scheduler.instantiate(&class_requests, bound, rng));
        self.inner_members = members;
        self.inner_slots_left = budget;
    }

    /// Draws the delay classes for halving iteration `iter` from the
    /// packets currently in `carry`.
    fn begin_next_iteration(&mut self, rng: &mut dyn RngCore) {
        self.iter += 1;
        let pool: Vec<usize> = self.carry.drain(..).filter(|&o| self.pending[o]).collect();
        if self.in_final || self.iter > self.xi {
            self.in_final = true;
            // Final stage runs on all remaining packets.
            self.classes.clear();
            self.carry = pool;
            return;
        }
        let psi = (self.initial_measure * 2f64.powi(1 - self.iter as i32) / self.chi)
            .ceil()
            .max(1.0) as usize;
        let mut classes = vec![Vec::new(); psi];
        for outer in pool {
            classes[rng.gen_range(0..psi)].push(outer);
        }
        self.classes = classes.into();
    }

    /// Ensures `self.inner` points at a runnable inner execution, advancing
    /// through classes / iterations / final rounds as needed.
    fn ensure_inner(&mut self, rng: &mut dyn RngCore) {
        loop {
            if self.remaining == 0 || self.gave_up {
                return;
            }
            if let Some(inner) = &self.inner {
                if self.inner_slots_left > 0 && !inner.is_done() {
                    return;
                }
                self.teardown_inner();
                continue;
            }
            if !self.in_final {
                match self.classes.pop_front() {
                    Some(members) => {
                        let members: Vec<usize> =
                            members.into_iter().filter(|&o| self.pending[o]).collect();
                        if members.is_empty() {
                            continue;
                        }
                        let (chi, window) = (self.chi, self.class_window);
                        self.start_inner(members, chi, window, rng);
                        return;
                    }
                    None => {
                        self.begin_next_iteration(rng);
                        continue;
                    }
                }
            } else {
                if self.final_round >= self.final_rounds_total {
                    self.gave_up = true;
                    return;
                }
                self.final_round += 1;
                let members: Vec<usize> = (0..self.requests.len())
                    .filter(|&o| self.pending[o])
                    .collect();
                self.carry.clear();
                if members.is_empty() {
                    self.gave_up = true;
                    return;
                }
                let (bound, budget) = (self.final_bound, self.final_budget);
                self.start_inner(members, bound, budget, rng);
                return;
            }
        }
    }
}

impl<S: StaticScheduler + Send> StaticAlgorithm for DenseTransformRun<S> {
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize> {
        self.ensure_inner(rng);
        let Some(inner) = &mut self.inner else {
            return Vec::new();
        };
        self.inner_slots_left -= 1;
        inner
            .attempts(rng)
            .into_iter()
            .map(|i| self.inner_members[i])
            .collect()
    }

    fn ack(&mut self, idx: usize) {
        if !std::mem::replace(&mut self.pending[idx], false) {
            return;
        }
        self.remaining -= 1;
        let inner_idx = self.outer_to_inner[idx];
        if inner_idx != usize::MAX {
            if let Some(inner) = &mut self.inner {
                inner.ack(inner_idx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 || self.gave_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::ThresholdFeasibility;
    use crate::ids::{LinkId, PacketId};
    use crate::interference::CompleteInterference;
    use crate::rng::root_rng;
    use crate::staticsched::uniform_rate::UniformRateScheduler;
    use crate::staticsched::{requests_measure, run_static};

    fn mac_requests(n: usize, m: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                packet: PacketId(i as u64),
                link: LinkId((i % m) as u32),
            })
            .collect()
    }

    #[test]
    fn transformed_serves_dense_instance() {
        let m = 8;
        let n = 400;
        let model = CompleteInterference::new(m);
        let reqs = mac_requests(n, m);
        let i = requests_measure(&model, &reqs);
        let feas = ThresholdFeasibility::new(model);
        // Small chi keeps the test fast; the structure is unchanged.
        let transform = DenseTransform::new(UniformRateScheduler::new(), m).with_chi(8.0);
        let budget = transform.slots_needed(i, n);
        let mut rng = root_rng(4);
        let result = run_static(&transform, &reqs, i, &feas, budget, &mut rng);
        assert!(
            result.all_served(),
            "served {}/{n} within {budget} slots",
            result.served_count()
        );
    }

    #[test]
    fn f_of_independent_of_n_unlike_base() {
        let base = UniformRateScheduler::new();
        let t = DenseTransform::new(base, 64);
        assert_eq!(t.f_of(100), t.f_of(1_000_000));
        assert!(base.f_of(1_000_000) > base.f_of(100));
    }

    #[test]
    fn budget_grows_linearly_in_measure_for_dense_instances() {
        let t = DenseTransform::new(UniformRateScheduler::new(), 32);
        let at = |i: f64| t.slots_needed(i, i as usize) as f64;
        // Ratio of budgets at 16x the measure should be ~16x, not 16x·log.
        let ratio = at(16_384.0) / at(1024.0);
        assert!(
            (8.0..24.0).contains(&ratio),
            "budget should scale linearly: ratio {ratio}"
        );
    }

    #[test]
    fn small_instance_skips_halving() {
        let t = DenseTransform::new(UniformRateScheduler::new(), 8);
        // Measure below the final bound: xi = 0.
        assert_eq!(t.xi(1.0, 10), 0);
        assert!(t.xi(1e9, 10) > 0);
    }

    #[test]
    fn empty_instance_is_done_immediately() {
        let t = DenseTransform::new(UniformRateScheduler::new(), 8);
        let mut rng = root_rng(1);
        let mut alg = t.instantiate(&[], 1.0, &mut rng);
        assert!(alg.is_done());
        assert!(alg.attempts(&mut rng).is_empty());
    }

    #[test]
    fn sparse_instance_served_in_final_stage_only() {
        let m = 4;
        let model = CompleteInterference::new(m);
        let reqs = mac_requests(6, m);
        let i = requests_measure(&model, &reqs);
        let feas = ThresholdFeasibility::new(model);
        let t = DenseTransform::new(UniformRateScheduler::new(), m).with_chi(8.0);
        assert_eq!(t.xi(i, reqs.len()), 0, "measure {i} should skip halving");
        let mut rng = root_rng(9);
        let budget = t.slots_needed(i, reqs.len());
        let result = run_static(&t, &reqs, i, &feas, budget, &mut rng);
        assert!(result.all_served());
    }

    #[test]
    fn no_packet_served_twice() {
        // Drive the transform manually and count acks per request.
        let m = 4;
        let n = 40;
        let model = CompleteInterference::new(m);
        let reqs = mac_requests(n, m);
        let i = requests_measure(&model, &reqs);
        let t = DenseTransform::new(UniformRateScheduler::new(), m).with_chi(6.0);
        let feas = ThresholdFeasibility::new(model);
        let mut rng = root_rng(2);
        let result = run_static(&t, &reqs, i, &feas, t.slots_needed(i, n), &mut rng);
        // `run_static` acks at most once per request by construction; the
        // invariant proven here is that all served flags are consistent.
        let served_count = result.served.iter().filter(|&&s| s).count();
        assert_eq!(served_count, result.served_count());
        assert!(result.served_count() <= n);
    }

    #[test]
    #[should_panic(expected = "phi must be at least 1")]
    fn rejects_small_phi() {
        let _ = DenseTransform::new(UniformRateScheduler::new(), 8).with_phi(0.5);
    }
}
