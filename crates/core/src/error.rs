//! Error types for model construction and validation.

use crate::ids::{LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating the network model.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A node id referenced a node that does not exist in the network.
    UnknownNode(NodeId),
    /// A link id referenced a link that does not exist in the network.
    UnknownLink(LinkId),
    /// A route was empty; every packet must cross at least one link.
    EmptyPath,
    /// Two consecutive links of a route do not share the required endpoint.
    DisconnectedPath {
        /// Position (hop index) of the first of the two offending links.
        hop: usize,
        /// The link at `hop`.
        prev: LinkId,
        /// The link at `hop + 1`, whose source differs from `prev`'s target.
        next: LinkId,
    },
    /// A route is longer than the network's declared maximum path length `D`.
    PathTooLong {
        /// The offending route length.
        len: usize,
        /// The maximum allowed length `D`.
        max: usize,
    },
    /// A probability parameter was outside `[0, 1]`, or a generator's total
    /// injection probability exceeded one.
    InvalidProbability(f64),
    /// A rate or measure parameter was not a finite non-negative number.
    InvalidRate(f64),
    /// An interference matrix violated `W[e][e] = 1` or `W[e][e'] ∈ [0, 1]`.
    InvalidWeight {
        /// Row of the offending entry.
        on: LinkId,
        /// Column of the offending entry.
        from: LinkId,
        /// The invalid value.
        value: f64,
    },
    /// A configuration parameter was inconsistent (message explains which).
    InvalidConfig(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownNode(v) => write!(f, "unknown node {v}"),
            ModelError::UnknownLink(e) => write!(f, "unknown link {e}"),
            ModelError::EmptyPath => write!(f, "route path is empty"),
            ModelError::DisconnectedPath { hop, prev, next } => write!(
                f,
                "links {prev} and {next} at hops {hop} and {} are not adjacent",
                hop + 1
            ),
            ModelError::PathTooLong { len, max } => {
                write!(f, "route of length {len} exceeds maximum path length {max}")
            }
            ModelError::InvalidProbability(p) => {
                write!(f, "probability {p} is outside the unit interval")
            }
            ModelError::InvalidRate(r) => {
                write!(f, "rate {r} is not a finite non-negative number")
            }
            ModelError::InvalidWeight { on, from, value } => {
                write!(
                    f,
                    "interference weight W[{on}][{from}] = {value} is invalid"
                )
            }
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let err = ModelError::DisconnectedPath {
            hop: 0,
            prev: LinkId(1),
            next: LinkId(2),
        };
        assert_eq!(
            err.to_string(),
            "links e1 and e2 at hops 0 and 1 are not adjacent"
        );
        assert_eq!(ModelError::EmptyPath.to_string(), "route path is empty");
        assert_eq!(
            ModelError::PathTooLong { len: 9, max: 4 }.to_string(),
            "route of length 9 exceeds maximum path length 4"
        );
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
