//! Strongly-typed identifiers for nodes, links and packets.
//!
//! Newtypes keep the three index spaces apart at compile time (a
//! [`LinkId`] can never be used where a [`NodeId`] is expected) while staying
//! `Copy` and as cheap as the raw integers they wrap.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (a vertex of the communication graph).
///
/// Created by [`crate::graph::NetworkBuilder::add_node`]; indices are dense
/// and start at zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed communication link (an edge of the graph).
///
/// Created by [`crate::graph::NetworkBuilder::add_link`]; indices are dense
/// and start at zero, so a `LinkId` doubles as an index into per-link arrays
/// such as [`crate::load::LinkLoad`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Identifier of an injected packet, unique within one simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl NodeId {
    /// The node index as a `usize`, for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link index as a `usize`, for indexing per-link arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PacketId {
    /// The raw packet number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<u32> for LinkId {
    fn from(raw: u32) -> Self {
        LinkId(raw)
    }
}

impl From<u64> for PacketId {
    fn from(raw: u64) -> Self {
        PacketId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_kind_prefix() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(LinkId(7).to_string(), "e7");
        assert_eq!(PacketId(42).to_string(), "p42");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(LinkId(1) < LinkId(2));
        assert!(NodeId(0) < NodeId(1));
        assert!(PacketId(5) > PacketId(4));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(LinkId(9).index(), 9);
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(PacketId(9).raw(), 9);
    }

    #[test]
    fn from_raw_integers() {
        assert_eq!(NodeId::from(2u32), NodeId(2));
        assert_eq!(LinkId::from(2u32), LinkId(2));
        assert_eq!(PacketId::from(2u64), PacketId(2));
    }
}
