//! The potential function `Φ` of Section 4.1 and empirical tools around it.
//!
//! `Φ` is the total number of remaining hops over all *failed* packets. The
//! stability proof shows `Pr[Φ ≥ k] ≤ (1 − 1/m²J)^k` — a geometric tail —
//! and experiment E4 verifies that shape empirically using the
//! [`PotentialSeries`] recorder here.

use serde::{Deserialize, Serialize};

/// Records a time series of potential samples (typically one per frame) and
/// computes empirical tail statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PotentialSeries {
    samples: Vec<u64>,
}

impl PotentialSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn record(&mut self, phi: u64) {
        self.samples.push(phi);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Mean potential.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Empirical tail probability `Pr[Φ ≥ k]`.
    pub fn tail_probability(&self, k: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let count = self.samples.iter().filter(|&&s| s >= k).count();
        count as f64 / self.samples.len() as f64
    }

    /// Empirical tail curve at thresholds `1..=max`, as `(k, Pr[Φ ≥ k])`
    /// pairs; the stability theory predicts a straight line in
    /// `log Pr` vs `k`.
    ///
    /// A series with no samples — or whose samples are all zero, so no
    /// threshold has positive tail mass — has an empty curve. (It used to
    /// be `[(1, 0.0)]`, a phantom point in the E4 tail plots.)
    pub fn tail_curve(&self) -> Vec<(u64, f64)> {
        (1..=self.max())
            .map(|k| (k, self.tail_probability(k)))
            .collect()
    }

    /// Least-squares slope of `ln Pr[Φ ≥ k]` against `k` over thresholds
    /// with non-zero tail probability, or `None` with fewer than two
    /// usable points.
    ///
    /// A geometric tail `(1 − q)^k` yields slope `ln(1 − q) < 0`.
    pub fn log_tail_slope(&self) -> Option<f64> {
        let points: Vec<(f64, f64)> = self
            .tail_curve()
            .into_iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|(k, p)| (k as f64, p.ln()))
            .collect();
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|(x, _)| x).sum();
        let sy: f64 = points.iter().map(|(_, y)| y).sum();
        let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_probability_counts_at_least() {
        let mut s = PotentialSeries::new();
        for phi in [0, 0, 1, 2, 4] {
            s.record(phi);
        }
        assert_eq!(s.tail_probability(1), 3.0 / 5.0);
        assert_eq!(s.tail_probability(4), 1.0 / 5.0);
        assert_eq!(s.tail_probability(5), 0.0);
        assert_eq!(s.max(), 4);
        assert_eq!(s.mean(), 7.0 / 5.0);
    }

    #[test]
    fn geometric_tail_has_negative_log_slope() {
        // Deterministic geometric-ish distribution: k appears 2^(10-k) times.
        let mut s = PotentialSeries::new();
        for k in 0..10u64 {
            for _ in 0..(1 << (10 - k)) {
                s.record(k);
            }
        }
        let slope = s.log_tail_slope().unwrap();
        assert!(
            (slope + std::f64::consts::LN_2).abs() < 0.2,
            "slope {slope} should be near -ln 2"
        );
    }

    #[test]
    fn empty_series_is_well_behaved() {
        let s = PotentialSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.tail_probability(1), 0.0);
        assert!(s.log_tail_slope().is_none());
    }

    #[test]
    fn empty_series_has_empty_tail_curve() {
        let s = PotentialSeries::new();
        assert!(
            s.tail_curve().is_empty(),
            "empty series must not emit a phantom (1, 0.0) point"
        );
    }

    #[test]
    fn all_zero_series_has_empty_tail_curve() {
        let mut s = PotentialSeries::new();
        s.record(0);
        s.record(0);
        assert!(s.tail_curve().is_empty());
        assert_eq!(s.tail_probability(1), 0.0);
    }

    #[test]
    fn tail_curve_spans_one_to_max() {
        let mut s = PotentialSeries::new();
        for phi in [0, 2, 3] {
            s.record(phi);
        }
        let curve = s.tail_curve();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0], (1, 2.0 / 3.0));
        assert_eq!(curve[2], (3, 1.0 / 3.0));
    }

    #[test]
    fn constant_series_has_no_slope() {
        let mut s = PotentialSeries::new();
        s.record(3);
        s.record(3);
        // Tail is 1.0 for k in 1..=3: ln(1) = 0 for all, slope 0.
        let slope = s.log_tail_slope().unwrap();
        assert_eq!(slope, 0.0);
    }
}
