//! The uniform-rate algorithm of Theorem 19: in each slot every pending
//! packet is transmitted independently with probability `1/4I`.
//!
//! The paper proves (for any linear interference measure whose feasibility
//! is dominated by an accumulated-weight threshold) that this serves `n`
//! requests of measure `I` within `O(I · log n)` slots with high
//! probability: the expected interference any attempt sees is at most
//! `I/4I = 1/4`, so by Markov each attempt succeeds with constant
//! probability, giving every pending packet a success probability of
//! `Ω(1/I)` per slot.
//!
//! Its `f(n) = Θ(log n)` dependence is the motivating example for the
//! Section 3 transformation ([`crate::transform::DenseTransform`]): doubling
//! the packets more than doubles the schedule length.

use crate::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::{Rng, RngCore};

/// Factory for Theorem 19's transmit-with-probability-`1/4I` algorithm.
#[derive(Clone, Copy, Debug)]
pub struct UniformRateScheduler {
    /// Numerator `c` of the transmission probability `c/I`; the paper uses
    /// `1/4`.
    rate_factor: f64,
    /// Safety factor on the slot budget.
    budget_factor: f64,
}

impl Default for UniformRateScheduler {
    fn default() -> Self {
        UniformRateScheduler {
            rate_factor: 0.25,
            budget_factor: 1.0,
        }
    }
}

impl UniformRateScheduler {
    /// Creates the scheduler with the paper's constants (probability
    /// `1/4I`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the transmission probability numerator (paper: `1/4`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate_factor <= 1`.
    pub fn with_rate_factor(mut self, rate_factor: f64) -> Self {
        assert!(
            rate_factor > 0.0 && rate_factor <= 1.0,
            "rate factor must be in (0, 1], got {rate_factor}"
        );
        self.rate_factor = rate_factor;
        self
    }

    /// Scales the slot budget (useful to probe the whp guarantee).
    ///
    /// # Panics
    ///
    /// Panics unless `budget_factor` is positive.
    pub fn with_budget_factor(mut self, budget_factor: f64) -> Self {
        assert!(budget_factor > 0.0, "budget factor must be positive");
        self.budget_factor = budget_factor;
        self
    }

    fn probability(&self, measure_bound: f64) -> f64 {
        (self.rate_factor / measure_bound.max(1.0)).min(1.0)
    }
}

impl StaticScheduler for UniformRateScheduler {
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        _rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        Box::new(UniformRateRun {
            pending: vec![true; requests.len()],
            remaining: requests.len(),
            probability: self.probability(measure_bound),
        })
    }

    fn f_of(&self, n: usize) -> f64 {
        // Per pending packet the per-slot success probability is at least
        // (rate/I)·(1 − 1/4); a budget of (8/rate)·I·(ln n + 4) drives the
        // expected survivor count below n·e^{-(ln n + 4)} ≤ e^{-4}.
        self.budget_factor * (8.0 / self.rate_factor.min(0.25)) * ((n.max(2) as f64).ln() + 4.0)
            / 8.0
    }

    fn g_of(&self, _n: usize) -> f64 {
        0.0
    }

    fn slots_needed(&self, measure_bound: f64, n: usize) -> usize {
        let i = measure_bound.max(1.0);
        let slots = self.budget_factor * (8.0 / self.rate_factor.min(0.25)) / 8.0
            * i
            * ((n.max(2) as f64).ln() + 4.0);
        slots.ceil() as usize + 1
    }

    fn name(&self) -> &str {
        "uniform-rate"
    }
}

struct UniformRateRun {
    pending: Vec<bool>,
    remaining: usize,
    probability: f64,
}

impl StaticAlgorithm for UniformRateRun {
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, &pending) in self.pending.iter().enumerate() {
            if pending && rng.gen::<f64>() < self.probability {
                out.push(i);
            }
        }
        out
    }

    fn ack(&mut self, idx: usize) {
        if std::mem::replace(&mut self.pending[idx], false) {
            self.remaining -= 1;
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::{PerLinkFeasibility, ThresholdFeasibility};
    use crate::ids::{LinkId, PacketId};
    use crate::interference::CompleteInterference;
    use crate::rng::root_rng;
    use crate::staticsched::{requests_measure, run_static};

    fn requests_on_links(links: &[u32]) -> Vec<Request> {
        links
            .iter()
            .enumerate()
            .map(|(i, &l)| Request {
                packet: PacketId(i as u64),
                link: LinkId(l),
            })
            .collect()
    }

    #[test]
    fn serves_all_on_multiple_access_channel() {
        // 16 packets on a MAC: measure is 16, success requires being alone.
        let model = CompleteInterference::new(16);
        let reqs = requests_on_links(&(0..16).collect::<Vec<_>>());
        let i = requests_measure(&model, &reqs);
        let feas = ThresholdFeasibility::new(model);
        let scheduler = UniformRateScheduler::new();
        let budget = scheduler.slots_needed(i, reqs.len());
        let mut rng = root_rng(12);
        let result = run_static(&scheduler, &reqs, i, &feas, budget, &mut rng);
        assert!(
            result.all_served(),
            "served only {}/{} within {budget}",
            result.served_count(),
            reqs.len()
        );
    }

    #[test]
    fn serves_parallel_links_quickly() {
        // Disjoint links under per-link feasibility: measure bound 1, so the
        // probability clamps near rate_factor and everything finishes fast.
        let reqs = requests_on_links(&(0..32).collect::<Vec<_>>());
        let feas = PerLinkFeasibility::new(32);
        let scheduler = UniformRateScheduler::new();
        let mut rng = root_rng(5);
        let result = run_static(&scheduler, &reqs, 1.0, &feas, 200, &mut rng);
        assert!(result.all_served());
    }

    #[test]
    fn schedule_length_scales_linearly_in_measure() {
        // Fixed n per instance, growing duplicates on one MAC: slots/I
        // should stay roughly constant.
        let scheduler = UniformRateScheduler::new();
        let mut ratios = Vec::new();
        for &n in &[8usize, 32, 128] {
            let model = CompleteInterference::new(n);
            let reqs = requests_on_links(&(0..n as u32).collect::<Vec<_>>());
            let i = n as f64;
            let feas = ThresholdFeasibility::new(model);
            let mut rng = root_rng(n as u64);
            let result = run_static(&scheduler, &reqs, i, &feas, 100_000, &mut rng);
            assert!(result.all_served());
            ratios.push(result.slots_used as f64 / (i * (n as f64).ln()));
        }
        // O(I log n): normalized ratios stay within a small constant band.
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 6.0,
            "normalized schedule lengths diverge: {ratios:?}"
        );
    }

    #[test]
    fn empty_instance_is_immediately_done() {
        let scheduler = UniformRateScheduler::new();
        let mut rng = root_rng(1);
        let mut alg = scheduler.instantiate(&[], 1.0, &mut rng);
        assert!(alg.is_done());
        assert!(alg.attempts(&mut rng).is_empty());
    }

    #[test]
    fn probability_clamps_for_tiny_measure() {
        let s = UniformRateScheduler::new();
        assert!(s.probability(0.0) <= 1.0);
        assert_eq!(s.probability(1.0), 0.25);
        assert_eq!(s.probability(10.0), 0.025);
    }

    #[test]
    fn double_ack_is_idempotent() {
        let scheduler = UniformRateScheduler::new();
        let reqs = requests_on_links(&[0]);
        let mut rng = root_rng(1);
        let mut alg = scheduler.instantiate(&reqs, 1.0, &mut rng);
        alg.ack(0);
        alg.ack(0);
        assert!(alg.is_done());
    }

    #[test]
    #[should_panic(expected = "rate factor")]
    fn rejects_zero_rate_factor() {
        let _ = UniformRateScheduler::new().with_rate_factor(0.0);
    }
}
