//! Static scheduling: serve a fixed set of single-hop transmission requests
//! in as few slots as possible.
//!
//! The paper's transformation consumes static algorithms through a narrow
//! interface: an algorithm `A(I, n)` that, given at most `n` requests of
//! interference measure at most `I`, serves them within `f(n)·I + g(n)`
//! slots with high probability. Algorithms here are *step-wise* and
//! acknowledgment-based — each slot they propose transmission attempts, a
//! [`crate::feasibility::Feasibility`] oracle decides which succeed, and
//! only successes are reported back — because that is exactly how the
//! dynamic protocol of Section 4 executes them.
//!
//! Provided algorithms:
//!
//! * [`uniform_rate::UniformRateScheduler`] — Theorem 19's algorithm
//!   (transmit each pending packet with probability `1/4I`), `O(I·log n)`;
//! * [`two_stage::TwoStageDecayScheduler`] — a spreading-plus-decay
//!   scheduler in the spirit of Fanghänel–Kesselheim–Vöcking,
//!   `O(I + polylog)`;
//! * [`greedy::GreedyPerLink`] — the trivial per-link algorithm for
//!   packet-routing networks, exactly `I` slots.

pub mod greedy;
pub mod two_stage;
pub mod uniform_rate;

use crate::feasibility::{Attempt, Feasibility};
use crate::ids::{LinkId, PacketId};
use crate::interference::InterferenceModel;
use crate::load::LinkLoad;
use rand::RngCore;

/// A single-hop transmission request: `packet` wants to cross `link`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    /// The packet to transmit.
    pub packet: PacketId,
    /// The link to transmit it on.
    pub link: LinkId,
}

/// A running instance of a static algorithm over a fixed request slice.
///
/// Indices in [`StaticAlgorithm::attempts`] and [`StaticAlgorithm::ack`]
/// refer to positions in the request slice the instance was created for.
///
/// `Send` is a supertrait so protocols owning boxed instances can move
/// across the threads of the parallel runners.
pub trait StaticAlgorithm: Send {
    /// Request indices to attempt in the next slot.
    ///
    /// Called exactly once per slot; implementations advance their internal
    /// clock on each call.
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize>;

    /// Writes the next slot's request indices into `out` (cleared first).
    ///
    /// Semantically identical to [`StaticAlgorithm::attempts`] — same
    /// indices, same RNG consumption, same once-per-slot contract — but
    /// lets the frame protocol reuse one buffer across slots. The default
    /// delegates to `attempts`; allocation-sensitive algorithms override
    /// it. Callers must invoke exactly one of the two per slot.
    fn attempts_into(&mut self, rng: &mut dyn RngCore, out: &mut Vec<usize>) {
        *out = self.attempts(rng);
    }

    /// Acknowledges that request `idx` succeeded in the slot of the most
    /// recent [`StaticAlgorithm::attempts`] call.
    fn ack(&mut self, idx: usize);

    /// Whether the instance will make no further attempts (all requests
    /// served, or the algorithm has exhausted its plan).
    fn is_done(&self) -> bool;
}

/// A factory of [`StaticAlgorithm`] instances together with its schedule
/// length guarantee `f(n)·I + g(n)`.
pub trait StaticScheduler {
    /// Creates an instance for `requests`, promised to have interference
    /// measure at most `measure_bound`.
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm>;

    /// Multiplicative coefficient of `I` in the schedule-length guarantee,
    /// as a function of the request count `n`.
    ///
    /// For algorithms suitable for the dynamic transformation this is
    /// (asymptotically) independent of `n`; for raw algorithms such as the
    /// uniform-rate scheduler it grows with `n` — which is exactly the
    /// scaling problem Algorithm 1 repairs.
    fn f_of(&self, n: usize) -> f64;

    /// Additive term of the schedule-length guarantee.
    fn g_of(&self, n: usize) -> f64;

    /// Slot budget sufficient to serve `n` requests of measure at most
    /// `measure_bound` with high probability.
    fn slots_needed(&self, measure_bound: f64, n: usize) -> usize {
        (self.f_of(n) * measure_bound + self.g_of(n)).ceil() as usize + 1
    }

    /// Short human-readable name, used in experiment tables.
    fn name(&self) -> &str;
}

impl<S: StaticScheduler + ?Sized> StaticScheduler for Box<S> {
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        (**self).instantiate(requests, measure_bound, rng)
    }

    fn f_of(&self, n: usize) -> f64 {
        (**self).f_of(n)
    }

    fn g_of(&self, n: usize) -> f64 {
        (**self).g_of(n)
    }

    fn slots_needed(&self, measure_bound: f64, n: usize) -> usize {
        (**self).slots_needed(measure_bound, n)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<S: StaticScheduler + ?Sized> StaticScheduler for &S {
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        (**self).instantiate(requests, measure_bound, rng)
    }

    fn f_of(&self, n: usize) -> f64 {
        (**self).f_of(n)
    }

    fn g_of(&self, n: usize) -> f64 {
        (**self).g_of(n)
    }

    fn slots_needed(&self, measure_bound: f64, n: usize) -> usize {
        (**self).slots_needed(measure_bound, n)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The interference measure of a request multiset under `model`: the
/// `I = ‖W·R‖∞` the scheduling guarantees are parameterized by.
pub fn requests_measure<M: InterferenceModel + ?Sized>(model: &M, requests: &[Request]) -> f64 {
    let load = LinkLoad::from_links(model.num_links(), requests.iter().map(|r| r.link));
    model.measure(&load)
}

/// Outcome of driving a [`StaticAlgorithm`] against a feasibility oracle.
#[derive(Clone, Debug)]
pub struct StaticRunResult {
    /// Slots consumed (at most the budget).
    pub slots_used: usize,
    /// Per-request success flags, index-aligned with the request slice.
    pub served: Vec<bool>,
    /// For each served request, the slot in which it succeeded.
    pub served_at: Vec<Option<usize>>,
    /// Total transmission attempts made.
    pub attempts_made: u64,
}

impl StaticRunResult {
    /// Whether every request was served.
    pub fn all_served(&self) -> bool {
        self.served.iter().all(|&s| s)
    }

    /// Number of served requests.
    pub fn served_count(&self) -> usize {
        self.served.iter().filter(|&&s| s).count()
    }

    /// Indices of requests that were not served.
    pub fn unserved(&self) -> Vec<usize> {
        self.served
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs `scheduler` on `requests` against `feasibility` for at most
/// `budget` slots and reports which requests were served when.
///
/// This is the reference executor used by the static experiments (E1, E7,
/// E9) and by tests; the dynamic protocol embeds the same loop inside its
/// frame structure.
pub fn run_static<S, F>(
    scheduler: &S,
    requests: &[Request],
    measure_bound: f64,
    feasibility: &F,
    budget: usize,
    rng: &mut dyn RngCore,
) -> StaticRunResult
where
    S: StaticScheduler + ?Sized,
    F: Feasibility + ?Sized,
{
    let mut alg = scheduler.instantiate(requests, measure_bound, rng);
    let mut served = vec![false; requests.len()];
    let mut served_at = vec![None; requests.len()];
    let mut attempts_made = 0u64;
    let mut slots_used = 0;
    for slot in 0..budget {
        if alg.is_done() {
            break;
        }
        slots_used = slot + 1;
        let idxs = alg.attempts(rng);
        if idxs.is_empty() {
            continue;
        }
        attempts_made += idxs.len() as u64;
        let attempts: Vec<Attempt> = idxs
            .iter()
            .map(|&i| Attempt {
                link: requests[i].link,
                packet: requests[i].packet,
            })
            .collect();
        let successes = feasibility.successes(&attempts, rng);
        for (&idx, &ok) in idxs.iter().zip(&successes) {
            if ok {
                alg.ack(idx);
                served[idx] = true;
                served_at[idx] = Some(slot);
            }
        }
    }
    StaticRunResult {
        slots_used,
        served,
        served_at,
        attempts_made,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::PerLinkFeasibility;
    use crate::rng::root_rng;

    /// An algorithm that attempts every pending request every slot.
    struct Eager {
        pending: Vec<bool>,
    }

    impl StaticAlgorithm for Eager {
        fn attempts(&mut self, _rng: &mut dyn RngCore) -> Vec<usize> {
            self.pending
                .iter()
                .enumerate()
                .filter(|(_, &p)| p)
                .map(|(i, _)| i)
                .collect()
        }

        fn ack(&mut self, idx: usize) {
            self.pending[idx] = false;
        }

        fn is_done(&self) -> bool {
            self.pending.iter().all(|&p| !p)
        }
    }

    struct EagerScheduler;

    impl StaticScheduler for EagerScheduler {
        fn instantiate(
            &self,
            requests: &[Request],
            _measure_bound: f64,
            _rng: &mut dyn RngCore,
        ) -> Box<dyn StaticAlgorithm> {
            Box::new(Eager {
                pending: vec![true; requests.len()],
            })
        }

        fn f_of(&self, _n: usize) -> f64 {
            1.0
        }

        fn g_of(&self, _n: usize) -> f64 {
            0.0
        }

        fn name(&self) -> &str {
            "eager"
        }
    }

    fn requests(links: &[u32]) -> Vec<Request> {
        links
            .iter()
            .enumerate()
            .map(|(i, &l)| Request {
                packet: PacketId(i as u64),
                link: LinkId(l),
            })
            .collect()
    }

    #[test]
    fn run_static_serves_disjoint_links_in_one_slot() {
        let reqs = requests(&[0, 1, 2]);
        let feas = PerLinkFeasibility::new(3);
        let mut rng = root_rng(1);
        let result = run_static(&EagerScheduler, &reqs, 1.0, &feas, 10, &mut rng);
        assert!(result.all_served());
        assert_eq!(result.slots_used, 1);
        assert_eq!(result.served_at, vec![Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn run_static_eager_livelocks_on_shared_link() {
        // Two packets on the same link, both always attempting: per-link
        // collision every slot, nothing ever served.
        let reqs = requests(&[0, 0]);
        let feas = PerLinkFeasibility::new(1);
        let mut rng = root_rng(1);
        let result = run_static(&EagerScheduler, &reqs, 2.0, &feas, 5, &mut rng);
        assert_eq!(result.served_count(), 0);
        assert_eq!(result.slots_used, 5);
        assert_eq!(result.unserved(), vec![0, 1]);
        assert_eq!(result.attempts_made, 10);
    }

    #[test]
    fn requests_measure_counts_multiplicity() {
        use crate::interference::IdentityInterference;
        let model = IdentityInterference::new(2);
        let reqs = requests(&[0, 0, 1]);
        assert_eq!(requests_measure(&model, &reqs), 2.0);
    }

    #[test]
    fn default_slots_needed_combines_f_and_g() {
        assert_eq!(EagerScheduler.slots_needed(10.0, 5), 11);
    }
}
