//! A spreading-plus-decay static scheduler achieving schedule lengths
//! `O(I + polylog(m, n))` — the stand-in for the Fanghänel–Kesselheim–
//! Vöcking algorithm \[21\] the paper uses for linear power assignments
//! (Corollary 12).
//!
//! Mechanism: random delays split the requests into classes of measure
//! `O(χ)` with `χ = Θ(log m)`; each class gets a contention window of
//! `Θ(χ)` slots in which its packets transmit with probability `Θ(1/χ)`,
//! succeeding with constant probability. Survivors cascade into the next
//! round, whose measure bound has halved; once the bound reaches `χ` a
//! uniform-rate tail finishes the `O(polylog)` stragglers. The total length
//! is dominated by the geometric sum `Σ_j 2^{-j}·I·O(1) = O(I)` — crucially
//! with a coefficient *independent of `n`*, which is what the dynamic
//! transformation needs from its static algorithm.

use crate::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::{Rng, RngCore};

/// Factory for the two-stage spreading/decay scheduler.
#[derive(Clone, Copy, Debug)]
pub struct TwoStageDecayScheduler {
    /// Network size `m`, which sets `χ`.
    m: usize,
    /// `χ = chi_factor · (ln m + 2)`.
    chi_factor: f64,
    /// Per-class contention window, in units of `χ` slots.
    window_factor: f64,
    /// Tail length, in units of `χ·(ln n + 4)` slots.
    tail_factor: f64,
}

impl TwoStageDecayScheduler {
    /// Creates the scheduler for a network of significant size `m` with
    /// default constants.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "network size must be positive");
        TwoStageDecayScheduler {
            m,
            chi_factor: 4.0,
            window_factor: 8.0,
            tail_factor: 4.0,
        }
    }

    /// Overrides the class-measure target `χ` scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless `chi_factor` is positive.
    pub fn with_chi_factor(mut self, chi_factor: f64) -> Self {
        assert!(chi_factor > 0.0, "chi factor must be positive");
        self.chi_factor = chi_factor;
        self
    }

    /// The class measure target `χ`.
    pub fn chi(&self) -> f64 {
        self.chi_factor * ((self.m as f64).ln() + 2.0)
    }

    fn window(&self) -> usize {
        (self.window_factor * self.chi()).ceil() as usize
    }

    fn tail_len(&self, n: usize) -> usize {
        (self.tail_factor * self.chi() * ((n.max(2) as f64).ln() + 4.0)).ceil() as usize
    }

    /// Number of cascade rounds needed for measure bound `i`.
    fn rounds(&self, i: f64) -> usize {
        let chi = self.chi();
        let mut bound = i.max(1.0);
        let mut rounds = 0;
        while bound > chi && rounds < 64 {
            bound /= 2.0;
            rounds += 1;
        }
        rounds.max(1)
    }
}

impl StaticScheduler for TwoStageDecayScheduler {
    fn instantiate(
        &self,
        requests: &[Request],
        measure_bound: f64,
        rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let chi = self.chi();
        let mut run = TwoStageRun {
            pending: vec![true; requests.len()],
            remaining: requests.len(),
            q: (1.0 / (4.0 * chi)).min(1.0),
            chi,
            window: self.window().max(1),
            classes: Vec::new(),
            class_of: vec![usize::MAX; requests.len()],
            slot_in_round: 0,
            round_len: 0,
            next_measure_bound: measure_bound.max(1.0),
            in_tail: false,
            tail_list: Vec::new(),
        };
        run.start_round(rng);
        Box::new(run)
    }

    fn f_of(&self, _n: usize) -> f64 {
        // Geometric sum over cascade rounds: Σ_j 2^{-j}·(window/χ) ≤ 2·c₁,
        // plus slack for the per-round ceiling.
        2.0 * self.window_factor + 2.0
    }

    fn g_of(&self, n: usize) -> f64 {
        // Per-round overhead (one window per round even when ψ_j rounds up)
        // plus the uniform-rate tail.
        let per_round = self.window() as f64;
        40.0 * per_round + self.tail_len(n) as f64
    }

    fn slots_needed(&self, measure_bound: f64, n: usize) -> usize {
        let chi = self.chi();
        let window = self.window();
        let mut bound = measure_bound.max(1.0);
        let mut slots = 0usize;
        for _ in 0..self.rounds(measure_bound) {
            let classes = (bound / chi).ceil().max(1.0) as usize;
            slots += classes * window;
            bound /= 2.0;
        }
        slots + self.tail_len(n) + 1
    }

    fn name(&self) -> &str {
        "two-stage-decay"
    }
}

struct TwoStageRun {
    pending: Vec<bool>,
    remaining: usize,
    q: f64,
    chi: f64,
    window: usize,
    /// Members per class for the current round.
    classes: Vec<Vec<usize>>,
    /// Current class of each request (tail: unused).
    class_of: Vec<usize>,
    slot_in_round: usize,
    round_len: usize,
    /// Measure bound the *next* round will be planned with.
    next_measure_bound: f64,
    in_tail: bool,
    /// Surviving request indices for the tail phase, ascending; lazily
    /// compacted as acknowledgements land so a tail slot costs
    /// O(survivors), not O(n). Iteration order (and therefore RNG draw
    /// order: one uniform per surviving request) matches the original
    /// full-array scan exactly.
    tail_list: Vec<usize>,
}

impl TwoStageRun {
    fn start_round(&mut self, rng: &mut dyn RngCore) {
        let psi = (self.next_measure_bound / self.chi).ceil().max(1.0) as usize;
        if self.next_measure_bound <= self.chi {
            self.in_tail = true;
            self.tail_list.clear();
            self.tail_list.extend(
                self.pending
                    .iter()
                    .enumerate()
                    .filter(|(_, &p)| p)
                    .map(|(i, _)| i),
            );
            return;
        }
        self.classes = vec![Vec::new(); psi];
        for (idx, &pending) in self.pending.iter().enumerate() {
            if pending {
                let class = rng.gen_range(0..psi);
                self.classes[class].push(idx);
                self.class_of[idx] = class;
            }
        }
        self.slot_in_round = 0;
        self.round_len = psi * self.window;
        self.next_measure_bound /= 2.0;
    }
}

impl StaticAlgorithm for TwoStageRun {
    fn attempts(&mut self, rng: &mut dyn RngCore) -> Vec<usize> {
        let mut out = Vec::new();
        self.attempts_into(rng, &mut out);
        out
    }

    fn attempts_into(&mut self, rng: &mut dyn RngCore, out: &mut Vec<usize>) {
        out.clear();
        if self.remaining == 0 {
            return;
        }
        if !self.in_tail && self.slot_in_round >= self.round_len {
            self.start_round(rng);
        }
        if self.in_tail {
            // Compact acknowledged entries out of the survivor list while
            // drawing; `tail_list` stays ascending, so the draw sequence
            // is identical to scanning the full pending array.
            let mut keep = 0;
            for read in 0..self.tail_list.len() {
                let idx = self.tail_list[read];
                if self.pending[idx] {
                    self.tail_list[keep] = idx;
                    keep += 1;
                    if rng.gen::<f64>() < self.q {
                        out.push(idx);
                    }
                }
            }
            self.tail_list.truncate(keep);
        } else {
            let class = self.slot_in_round / self.window;
            for &idx in &self.classes[class] {
                if self.pending[idx] && rng.gen::<f64>() < self.q {
                    out.push(idx);
                }
            }
            self.slot_in_round += 1;
        }
    }

    fn ack(&mut self, idx: usize) {
        if std::mem::replace(&mut self.pending[idx], false) {
            self.remaining -= 1;
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::ThresholdFeasibility;
    use crate::ids::{LinkId, PacketId};
    use crate::interference::CompleteInterference;
    use crate::rng::root_rng;
    use crate::staticsched::uniform_rate::UniformRateScheduler;
    use crate::staticsched::{run_static, StaticScheduler};

    fn mac_requests(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                packet: PacketId(i as u64),
                link: LinkId((i % 8) as u32),
            })
            .collect()
    }

    #[test]
    fn serves_dense_mac_instance() {
        let n = 200;
        let model = CompleteInterference::new(8);
        let reqs = mac_requests(n);
        let feas = ThresholdFeasibility::new(model);
        let scheduler = TwoStageDecayScheduler::new(8);
        let budget = scheduler.slots_needed(n as f64, n);
        let mut rng = root_rng(3);
        let result = run_static(&scheduler, &reqs, n as f64, &feas, budget, &mut rng);
        assert!(
            result.all_served(),
            "served {}/{} in {} slots (budget {budget})",
            result.served_count(),
            n,
            result.slots_used
        );
    }

    #[test]
    fn slots_per_measure_flat_for_dense_instances() {
        // The point of the scheduler: slots/I approaches a constant as the
        // instance gets denser, unlike the uniform-rate algorithm.
        let model = CompleteInterference::new(8);
        let feas = ThresholdFeasibility::new(model);
        let scheduler = TwoStageDecayScheduler::new(8);
        let mut ratios = Vec::new();
        for &n in &[256usize, 1024] {
            let reqs = mac_requests(n);
            let mut rng = root_rng(n as u64);
            let budget = 4 * scheduler.slots_needed(n as f64, n);
            let result = run_static(&scheduler, &reqs, n as f64, &feas, budget, &mut rng);
            assert!(result.all_served());
            ratios.push(result.slots_used as f64 / n as f64);
        }
        assert!(
            ratios[1] / ratios[0] < 1.6,
            "slots/I should flatten: {ratios:?}"
        );
    }

    #[test]
    fn f_of_is_independent_of_n() {
        let s = TwoStageDecayScheduler::new(64);
        assert_eq!(s.f_of(10), s.f_of(1_000_000));
        // In contrast, the uniform-rate scheduler's coefficient grows.
        let u = UniformRateScheduler::new();
        assert!(u.f_of(1_000_000) > 2.0 * u.f_of(10));
    }

    #[test]
    fn sparse_instance_goes_straight_to_tail() {
        // Measure below χ: no cascade rounds, tail only.
        let scheduler = TwoStageDecayScheduler::new(8);
        let mut rng = root_rng(1);
        let reqs = mac_requests(4);
        let mut alg = scheduler.instantiate(&reqs, 4.0, &mut rng);
        // The run starts in the tail; attempts come from the whole set.
        assert!(!alg.is_done());
        let _ = alg.attempts(&mut rng);
    }

    #[test]
    fn empty_instance_is_done() {
        let scheduler = TwoStageDecayScheduler::new(8);
        let mut rng = root_rng(1);
        let mut alg = scheduler.instantiate(&[], 1.0, &mut rng);
        assert!(alg.is_done());
        assert!(alg.attempts(&mut rng).is_empty());
    }

    #[test]
    fn budget_formula_dominated_by_linear_term() {
        let s = TwoStageDecayScheduler::new(64);
        let small = s.slots_needed(100.0, 100);
        let large = s.slots_needed(10_000.0, 10_000);
        // 100x the measure should cost less than ~120x the slots.
        assert!((large as f64) < 120.0 * small as f64);
        // And the linear term dominates: at least 2·window_factor per unit I.
        assert!(large as f64 > 16.0 * 10_000.0);
    }

    #[test]
    #[should_panic(expected = "network size")]
    fn rejects_zero_m() {
        let _ = TwoStageDecayScheduler::new(0);
    }
}
