//! The trivial per-link algorithm for packet-routing networks
//! (`W = identity`): every link transmits one pending packet per slot.
//!
//! Under per-link feasibility this is deterministic and optimal — the
//! schedule length equals the congestion, i.e. exactly the interference
//! measure `I`. Plugged into the dynamic transformation it yields stable
//! protocols for every injection rate `λ < 1`, the classic
//! adversarial-queuing result the paper recovers as a special case.

use crate::ids::LinkId;
use crate::staticsched::{Request, StaticAlgorithm, StaticScheduler};
use rand::RngCore;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Factory for the greedy one-packet-per-link-per-slot algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyPerLink;

impl GreedyPerLink {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GreedyPerLink
    }
}

impl StaticScheduler for GreedyPerLink {
    fn instantiate(
        &self,
        requests: &[Request],
        _measure_bound: f64,
        _rng: &mut dyn RngCore,
    ) -> Box<dyn StaticAlgorithm> {
        let mut queues: BTreeMap<LinkId, VecDeque<usize>> = BTreeMap::new();
        let mut links = Vec::with_capacity(requests.len());
        for (idx, req) in requests.iter().enumerate() {
            queues.entry(req.link).or_default().push_back(idx);
            links.push(req.link);
        }
        Box::new(GreedyRun {
            queues,
            links,
            remaining: requests.len(),
        })
    }

    fn f_of(&self, _n: usize) -> f64 {
        1.0
    }

    fn g_of(&self, _n: usize) -> f64 {
        0.0
    }

    fn name(&self) -> &str {
        "greedy-per-link"
    }
}

struct GreedyRun {
    queues: BTreeMap<LinkId, VecDeque<usize>>,
    /// Link of each request index, for O(1) acknowledgement lookup (the
    /// frame protocol acks every success of a slot; a linear scan over
    /// all queues per ack made acknowledgement O(m) and dominated the
    /// slot loop at m ≥ 1024).
    links: Vec<LinkId>,
    remaining: usize,
}

impl StaticAlgorithm for GreedyRun {
    fn attempts(&mut self, _rng: &mut dyn RngCore) -> Vec<usize> {
        self.queues
            .values()
            .filter_map(|q| q.front().copied())
            .collect()
    }

    fn attempts_into(&mut self, _rng: &mut dyn RngCore, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.queues.values().filter_map(|q| q.front().copied()));
    }

    fn ack(&mut self, idx: usize) {
        // The acked request is at the front of its link's queue.
        let Some(&link) = self.links.get(idx) else {
            return;
        };
        if let Some(queue) = self.queues.get_mut(&link) {
            if queue.front() == Some(&idx) {
                queue.pop_front();
                self.remaining -= 1;
            }
        }
        // Ack for a request that was not at its queue front: ignore; the
        // oracle never produces this for per-link feasibility.
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::PerLinkFeasibility;
    use crate::ids::PacketId;
    use crate::interference::IdentityInterference;
    use crate::rng::root_rng;
    use crate::staticsched::{requests_measure, run_static};

    fn requests(links: &[u32]) -> Vec<Request> {
        links
            .iter()
            .enumerate()
            .map(|(i, &l)| Request {
                packet: PacketId(i as u64),
                link: LinkId(l),
            })
            .collect()
    }

    #[test]
    fn schedule_length_equals_congestion() {
        // Link 0 carries 4 packets, link 1 carries 2: congestion 4.
        let reqs = requests(&[0, 0, 0, 0, 1, 1]);
        let model = IdentityInterference::new(2);
        let i = requests_measure(&model, &reqs);
        assert_eq!(i, 4.0);
        let feas = PerLinkFeasibility::new(2);
        let mut rng = root_rng(1);
        let result = run_static(&GreedyPerLink::new(), &reqs, i, &feas, 10, &mut rng);
        assert!(result.all_served());
        assert_eq!(result.slots_used, 4);
    }

    #[test]
    fn parallel_links_finish_together() {
        let reqs = requests(&[0, 1, 2, 3]);
        let feas = PerLinkFeasibility::new(4);
        let mut rng = root_rng(1);
        let result = run_static(&GreedyPerLink::new(), &reqs, 1.0, &feas, 10, &mut rng);
        assert!(result.all_served());
        assert_eq!(result.slots_used, 1);
    }

    #[test]
    fn fifo_order_within_a_link() {
        let reqs = requests(&[0, 0]);
        let feas = PerLinkFeasibility::new(1);
        let mut rng = root_rng(1);
        let result = run_static(&GreedyPerLink::new(), &reqs, 2.0, &feas, 10, &mut rng);
        assert_eq!(result.served_at[0], Some(0));
        assert_eq!(result.served_at[1], Some(1));
    }

    #[test]
    fn guarantee_is_exactly_linear() {
        let g = GreedyPerLink::new();
        assert_eq!(g.f_of(1_000_000), 1.0);
        assert_eq!(g.g_of(1_000_000), 0.0);
        assert_eq!(g.slots_needed(7.0, 100), 8);
    }

    #[test]
    fn empty_instance_is_done() {
        let mut rng = root_rng(1);
        let alg = GreedyPerLink::new().instantiate(&[], 0.0, &mut rng);
        assert!(alg.is_done());
    }
}
