//! O(1)-amortized batch sampling for the stochastic injection model.
//!
//! [`StochasticInjector`] walks all `m` generators every slot — one
//! uniform draw each — so at `m = 1024` an *idle* slot (no injection at
//! all) still costs `m` RNG draws and CDF walks, and sweeps over large
//! SINR substrates are floor-limited by the injector rather than by the
//! SINR kernel it feeds. The paper's model (Section 2.1) only requires
//! injections to be i.i.d. per slot and independent across generators —
//! exactly the structure that admits standard discrete-event skip-ahead
//! sampling:
//!
//! * **Skip-ahead calendar** (sparse regimes): for a Bernoulli(p)
//!   generator the gap to its next injecting slot is geometric, sampled
//!   in O(1) as `⌊ln u / ln(1−p)⌋` with `u` uniform in `(0, 1]`. Each
//!   generator keeps exactly one pending entry in a min-heap keyed by
//!   slot; a slot's cost is a heap peek when idle and `O(log m)` per
//!   actual injection otherwise.
//! * **Dense per-slot batch** (the symmetric `uniform_generators`
//!   workload): when every generator shares one probability `p`, the
//!   set of injecting generators in a slot is a Binomial(m, p) batch,
//!   sampled directly by geometric index skipping *within* the slot —
//!   `O(1 + k)` where `k` is the number of packets actually injected,
//!   with no per-slot heap churn.
//!
//! The mode is selected automatically from the generators' total
//! probabilities ([`BatchStochasticInjector::new`]). Both paths draw the
//! packet's route *conditionally on injection*
//! ([`crate::injection::stochastic::GeneratorSpec::sample_conditional`]), so the per-slot distribution
//! is exactly the naive sampler's: each generator injects independently
//! with its total probability and picks route `i` with probability
//! `p_i / total`. The RNG *stream* differs from the naive sampler's
//! (skip-ahead consumes one draw per injection instead of one per
//! generator per slot), so traces are not bit-identical — equivalence is
//! distributional, pinned by the chi-square tests below.

use crate::injection::stochastic::StochasticInjector;
use crate::injection::Injector;
use crate::interference::InterferenceModel;
use crate::load::LinkLoad;
use crate::path::RoutePath;
use rand::{Rng, RngCore};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Expected injections per slot above which the symmetric workload uses
/// the dense per-slot batch path instead of the calendar.
///
/// The dense path pays one geometric draw per slot plus one per packet;
/// the calendar pays a heap peek on idle slots and `O(log m)` per
/// packet. Below ~½ expected packet per slot most slots are idle and
/// the peek-only calendar wins; above it the draw-per-slot overhead is
/// amortized by the packets themselves.
pub const DENSE_MIN_EXPECTED_PER_SLOT: f64 = 0.5;

/// The sampling strategy selected for a generator set.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// No generator has positive probability: never injects.
    Idle,
    /// Symmetric dense workload: one shared `p`, per-slot binomial batch
    /// via within-slot geometric index skipping over `active`.
    Dense,
    /// General case: per-generator geometric skip-ahead keyed in a
    /// min-heap slot calendar. Seeded lazily at the first queried slot.
    Calendar,
}

/// Batch sampling engine over a [`StochasticInjector`]'s generators.
///
/// Drop-in [`Injector`] with identical per-slot distribution and
/// O(1)-amortized idle-slot cost. Construct with
/// [`new`](BatchStochasticInjector::new) or via `From<StochasticInjector>`.
///
/// ```
/// use dps_core::injection::batch::BatchStochasticInjector;
/// use dps_core::injection::stochastic::uniform_generators;
/// use dps_core::injection::Injector;
/// use dps_core::prelude::*;
/// use dps_core::rng::root_rng;
///
/// let routes: Vec<_> = (0..4)
///     .map(|l| RoutePath::single_hop(LinkId(l)).shared())
///     .collect();
/// let mut injector = BatchStochasticInjector::from(uniform_generators(routes, 0.25)?);
/// let mut rng = root_rng(7);
/// let mut buf = Vec::new();
/// injector.inject_into(0, &mut rng, &mut buf);
/// assert!(buf.len() <= 4);
/// # Ok::<(), dps_core::error::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BatchStochasticInjector {
    inner: StochasticInjector,
    mode: Mode,
    /// Indices of generators with positive total probability — the only
    /// ones either path ever schedules.
    active: Vec<u32>,
    /// The shared per-generator probability of the dense path.
    dense_p: f64,
    /// Cached `ln(1 − dense_p)` — the geometric-gap denominator. One
    /// `ln_1p` per *injection* halved the dense path's transcendental
    /// budget; the gap itself is the bit-identical `u.ln() / ln_q`.
    dense_ln_q: f64,
    /// Cached `ln(1 − p)` per generator (aligned with the wrapped
    /// injector's generator list), for the calendar path.
    ln_q: Vec<f64>,
    /// Pending `(next injecting slot, generator)` entries; min-heap via
    /// `Reverse`, so ties pop in generator order (matching the naive
    /// sampler's iteration order within a slot).
    calendar: BinaryHeap<Reverse<(u64, u32)>>,
    /// Slot the calendar was seeded at; `None` until the first query.
    seeded_at: Option<u64>,
}

impl BatchStochasticInjector {
    /// Wraps `inner`, selecting the batch path from its generators'
    /// total probabilities: the dense binomial batch when every positive
    /// generator shares one probability and the workload expects at
    /// least [`DENSE_MIN_EXPECTED_PER_SLOT`] packets per slot, the
    /// skip-ahead calendar otherwise.
    pub fn new(inner: StochasticInjector) -> Self {
        let totals: Vec<f64> = inner
            .generators()
            .iter()
            .map(|g| g.total_probability())
            .collect();
        let active: Vec<u32> = totals
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut dense_p = 0.0;
        let mode = if active.is_empty() {
            Mode::Idle
        } else {
            let p0 = totals[active[0] as usize];
            let symmetric = active.iter().all(|&i| totals[i as usize] == p0);
            if symmetric && p0 * active.len() as f64 >= DENSE_MIN_EXPECTED_PER_SLOT {
                dense_p = p0;
                Mode::Dense
            } else {
                Mode::Calendar
            }
        };
        let ln_q = totals.iter().map(|&t| (-t).ln_1p()).collect();
        BatchStochasticInjector {
            inner,
            mode,
            active,
            dense_p,
            dense_ln_q: (-dense_p).ln_1p(),
            ln_q,
            calendar: BinaryHeap::new(),
            seeded_at: None,
        }
    }

    /// The wrapped per-generator injector (specs, rates, loads).
    pub fn inner(&self) -> &StochasticInjector {
        &self.inner
    }

    /// Unwraps back into the naive per-generator sampler.
    pub fn into_inner(self) -> StochasticInjector {
        self.inner
    }

    /// Whether the dense per-slot binomial batch path was selected.
    pub fn is_dense(&self) -> bool {
        self.mode == Mode::Dense
    }

    /// Expected per-slot load vector `F` (delegates to the wrapped
    /// injector; batching does not change the distribution).
    pub fn expected_load(&self, num_links: usize) -> LinkLoad {
        self.inner.expected_load(num_links)
    }

    /// The injection rate `λ = ‖W·F‖∞` under `model`.
    pub fn rate<M: InterferenceModel + ?Sized>(&self, model: &M) -> f64 {
        self.inner.rate(model)
    }

    /// Seeds every active generator's first pending slot from `slot`.
    fn seed_calendar(&mut self, slot: u64, rng: &mut dyn RngCore) {
        let generators = self.inner.generators();
        for &i in &self.active {
            let p = generators[i as usize].total_probability();
            let gap = geometric_gap_cached(p, self.ln_q[i as usize], rng);
            if let Some(next) = slot.checked_add(gap) {
                self.calendar.push(Reverse((next, i)));
            }
        }
        self.seeded_at = Some(slot);
    }

    fn inject_calendar(&mut self, slot: u64, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        if self.seeded_at.is_none() {
            self.seed_calendar(slot, rng);
        }
        while let Some(&Reverse((due, i))) = self.calendar.peek() {
            if due > slot {
                break;
            }
            self.calendar.pop();
            let generator = &self.inner.generators()[i as usize];
            let p = generator.total_probability();
            let ln_q = self.ln_q[i as usize];
            if due < slot {
                // The entry came due in a slot that was never queried
                // (the caller skipped ahead). The geometric law is
                // memoryless, so rescheduling with a fresh gap from the
                // current slot reproduces exactly the conditional
                // distribution of "next injection at or after `slot`".
                if let Some(next) = slot.checked_add(geometric_gap_cached(p, ln_q, rng)) {
                    self.calendar.push(Reverse((next, i)));
                }
                continue;
            }
            if let Some(route) = generator.sample_conditional(rng) {
                out.push(route);
            }
            if let Some(next) = slot
                .checked_add(1)
                .and_then(|s| s.checked_add(geometric_gap_cached(p, ln_q, rng)))
            {
                self.calendar.push(Reverse((next, i)));
            }
        }
    }

    fn inject_dense(&mut self, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        let generators = self.inner.generators();
        let len = self.active.len() as u64;
        // Geometric index skipping over the active generators: each is
        // included independently with probability `p`, so the emitted
        // batch size is Binomial(|active|, p) — without ever touching
        // the generators that stay silent this slot.
        let mut j = geometric_gap_cached(self.dense_p, self.dense_ln_q, rng);
        while j < len {
            let i = self.active[j as usize];
            if let Some(route) = generators[i as usize].sample_conditional(rng) {
                out.push(route);
            }
            j = match j.checked_add(1).and_then(|j| {
                j.checked_add(geometric_gap_cached(self.dense_p, self.dense_ln_q, rng))
            }) {
                Some(next) => next,
                None => break,
            };
        }
    }
}

impl From<StochasticInjector> for BatchStochasticInjector {
    fn from(inner: StochasticInjector) -> Self {
        BatchStochasticInjector::new(inner)
    }
}

impl Injector for BatchStochasticInjector {
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        let mut out = Vec::new();
        self.inject_into(slot, rng, &mut out);
        out
    }

    fn inject_into(&mut self, slot: u64, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        out.clear();
        match self.mode {
            Mode::Idle => {}
            Mode::Dense => self.inject_dense(rng, out),
            Mode::Calendar => self.inject_calendar(slot, rng, out),
        }
    }
}

/// Samples the geometric skip-ahead gap: the number of non-injecting
/// slots a Bernoulli(`p`) generator waits before its next injection,
/// `P(gap = k) = (1−p)ᵏ·p`, in O(1) via inversion:
/// `⌊ln u / ln(1−p)⌋` with `u` uniform in `(0, 1]`.
///
/// `p ≥ 1` injects every slot (gap 0); `p ≤ 0` never injects
/// (`u64::MAX`, clamped — callers drop entries that overflow the slot
/// horizon).
pub fn geometric_gap(p: f64, rng: &mut dyn RngCore) -> u64 {
    geometric_gap_cached(p, (-p).ln_1p(), rng)
}

/// [`geometric_gap`] with the denominator `ln(1 − p)` precomputed (the
/// injector caches it per generator: one `ln_1p` per construction
/// instead of one per injection). Bit-identical to [`geometric_gap`]:
/// same draw, same division.
fn geometric_gap_cached(p: f64, ln_q: f64, rng: &mut dyn RngCore) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    // `gen::<f64>()` is uniform in [0, 1); reflect to (0, 1] so `ln`
    // never sees zero. The denominator is `ln(1−p)` via `ln_1p`, which
    // stays exact (≈ −p) for tiny p where `(1.0 - p).ln()` would round
    // to zero and the division would collapse every gap to 0.
    let u = 1.0 - rng.gen::<f64>();
    let gap = u.ln() / ln_q;
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        // Truncation of a non-negative finite float is the floor.
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::injection::stochastic::{uniform_generators, GeneratorSpec};
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    /// χ² statistic of observed counts against expected counts.
    fn chi_square(observed: &[f64], expected: &[f64]) -> f64 {
        observed
            .iter()
            .zip(expected)
            .map(|(o, e)| {
                assert!(*e > 0.0, "expected count must be positive");
                (o - e).powi(2) / e
            })
            .sum()
    }

    #[test]
    fn mode_selection_follows_totals() {
        let dense =
            BatchStochasticInjector::from(uniform_generators((0..8).map(path), 0.25).unwrap());
        assert!(dense.is_dense(), "8 × 0.25 = 2 expected/slot is dense");

        let sparse =
            BatchStochasticInjector::from(uniform_generators((0..8).map(path), 0.01).unwrap());
        assert!(!sparse.is_dense(), "8 × 0.01 expected/slot is sparse");

        let asymmetric = BatchStochasticInjector::from(StochasticInjector::new(vec![
            GeneratorSpec::bernoulli(path(0), 0.9).unwrap(),
            GeneratorSpec::bernoulli(path(1), 0.5).unwrap(),
        ]));
        assert!(!asymmetric.is_dense(), "mixed totals use the calendar");

        let mut idle =
            BatchStochasticInjector::from(StochasticInjector::new(vec![GeneratorSpec::bernoulli(
                path(0),
                0.0,
            )
            .unwrap()]));
        let mut rng = root_rng(1);
        for slot in 0..100 {
            assert!(idle.inject(slot, &mut rng).is_empty());
        }
    }

    #[test]
    fn geometric_gap_matches_its_law() {
        let mut rng = root_rng(5);
        let p = 0.2;
        let n = 200_000;
        let mut counts = [0u64; 4];
        let mut tail = 0u64;
        for _ in 0..n {
            let g = geometric_gap(p, &mut rng);
            if (g as usize) < counts.len() {
                counts[g as usize] += 1;
            } else {
                tail += 1;
            }
        }
        let observed: Vec<f64> = counts
            .iter()
            .map(|&c| c as f64)
            .chain([tail as f64])
            .collect();
        let mut expected: Vec<f64> = (0..counts.len())
            .map(|k| n as f64 * (1.0 - p).powi(k as i32) * p)
            .collect();
        expected.push(n as f64 - expected.iter().sum::<f64>());
        // df = 4; critical value at α = 0.001 is 18.47.
        let chi2 = chi_square(&observed, &expected);
        assert!(chi2 < 18.47, "geometric gap law off: χ² = {chi2}");
        assert_eq!(geometric_gap(1.0, &mut rng), 0);
        assert_eq!(geometric_gap(0.0, &mut rng), u64::MAX);
    }

    /// Regression: for p below ~2⁻⁵², `1.0 − p` rounds to `1.0`, so a
    /// naive `(1.0 − p).ln()` denominator is `0` and every gap
    /// collapses to `-inf as u64 = 0` — a generator meant to fire once
    /// per ~10¹⁷ slots would fire *every* slot. `ln_1p` keeps the
    /// denominator ≈ −p.
    #[test]
    fn geometric_gap_survives_tiny_probabilities() {
        let mut rng = root_rng(6);
        for _ in 0..100 {
            let gap = geometric_gap(1e-17, &mut rng);
            assert!(
                gap > 1_000_000_000,
                "tiny-p gap collapsed to {gap} (expected ~10¹⁷)"
            );
        }
        // And a calendar over such a generator stays silent.
        let mut batch =
            BatchStochasticInjector::new(StochasticInjector::new(vec![GeneratorSpec::bernoulli(
                path(0),
                1e-17,
            )
            .unwrap()]));
        let mut rng = root_rng(7);
        for slot in 0..10_000 {
            assert!(batch.inject(slot, &mut rng).is_empty());
        }
    }

    #[test]
    fn dense_batch_matches_naive_rate_and_occupancy() {
        let m = 256;
        let p = 0.3;
        let slots = 20_000u64;
        let expected = m as f64 * p;

        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m as u32).map(path), p).unwrap());
        assert!(batch.is_dense());
        let mut naive = uniform_generators((0..m as u32).map(path), p).unwrap();

        let mut rng_b = root_rng(21);
        let mut rng_n = root_rng(22);
        let mut buf = Vec::new();
        let (mut total_b, mut total_n) = (0u64, 0u64);
        let mut per_generator = vec![0u64; m];
        for slot in 0..slots {
            batch.inject_into(slot, &mut rng_b, &mut buf);
            assert!(buf.len() <= m, "more packets than generators");
            total_b += buf.len() as u64;
            for route in &buf {
                per_generator[route.hop(0).unwrap().index()] += 1;
            }
            total_n += naive.inject(slot, &mut rng_n).len() as u64;
        }
        let mean_b = total_b as f64 / slots as f64;
        let mean_n = total_n as f64 / slots as f64;
        assert!(
            (mean_b - expected).abs() < 0.5,
            "batch mean {mean_b} vs expected {expected}"
        );
        assert!(
            (mean_b - mean_n).abs() < 1.0,
            "batch mean {mean_b} vs naive mean {mean_n}"
        );
        // Per-generator occupancy is uniform: χ² over m cells, each
        // expecting slots·p. df = 255; critical at α ≈ 0.001 is ~330.
        let observed: Vec<f64> = per_generator.iter().map(|&c| c as f64).collect();
        let expected_cells = vec![slots as f64 * p; m];
        let chi2 = chi_square(&observed, &expected_cells);
        assert!(chi2 < 330.0, "per-generator occupancy skewed: χ² = {chi2}");
    }

    #[test]
    fn sparse_calendar_matches_naive_rate() {
        let m = 64;
        let p = 0.004;
        let slots = 400_000u64;
        let expected = m as f64 * p; // 0.256 packets/slot → calendar

        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m as u32).map(path), p).unwrap());
        assert!(!batch.is_dense());
        let mut naive = uniform_generators((0..m as u32).map(path), p).unwrap();

        let mut rng_b = root_rng(31);
        let mut rng_n = root_rng(32);
        let mut buf = Vec::new();
        let (mut total_b, mut total_n) = (0u64, 0u64);
        for slot in 0..slots {
            batch.inject_into(slot, &mut rng_b, &mut buf);
            assert!(buf.len() <= m);
            total_b += buf.len() as u64;
            total_n += naive.inject(slot, &mut rng_n).len() as u64;
        }
        let mean_b = total_b as f64 / slots as f64;
        let mean_n = total_n as f64 / slots as f64;
        assert!(
            (mean_b - expected).abs() < 0.01,
            "calendar mean {mean_b} vs expected {expected}"
        );
        assert!(
            (mean_b - mean_n).abs() < 0.02,
            "calendar mean {mean_b} vs naive mean {mean_n}"
        );
    }

    #[test]
    fn per_choice_distribution_matches_naive_chi_square() {
        // A mixture generator plus an asymmetric companion forces the
        // calendar; the route distribution conditional on injection must
        // match the naive sampler's `p_i / total`.
        let weights = [0.05, 0.03, 0.02];
        let total: f64 = weights.iter().sum();
        let make = || {
            StochasticInjector::new(vec![
                GeneratorSpec::new(
                    weights
                        .iter()
                        .enumerate()
                        .map(|(i, &w)| (path(i as u32), w))
                        .collect(),
                )
                .unwrap(),
                GeneratorSpec::bernoulli(path(9), 0.01).unwrap(),
            ])
        };
        let slots = 300_000u64;
        let run = |injector: &mut dyn Injector, seed: u64| -> Vec<f64> {
            let mut rng = root_rng(seed);
            let mut counts = vec![0f64; weights.len()];
            let mut buf = Vec::new();
            for slot in 0..slots {
                injector.inject_into(slot, &mut rng, &mut buf);
                for route in &buf {
                    let link = route.hop(0).unwrap().index();
                    if link < weights.len() {
                        counts[link] += 1.0;
                    }
                }
            }
            counts
        };
        let mut batch = BatchStochasticInjector::new(make());
        assert!(!batch.is_dense());
        let mut naive = make();
        let batch_counts = run(&mut batch, 41);
        let naive_counts = run(&mut naive, 42);

        for (label, counts) in [("batch", &batch_counts), ("naive", &naive_counts)] {
            let n: f64 = counts.iter().sum();
            let expected: Vec<f64> = weights.iter().map(|w| n * w / total).collect();
            // df = 2; critical value at α = 0.001 is 13.82.
            let chi2 = chi_square(counts, &expected);
            assert!(chi2 < 13.82, "{label} per-choice skew: χ² = {chi2}");
        }
        // And the two samplers' totals agree with the analytic rate.
        let expected_total = slots as f64 * total;
        for (label, counts) in [("batch", &batch_counts), ("naive", &naive_counts)] {
            let n: f64 = counts.iter().sum();
            assert!(
                (n - expected_total).abs() / expected_total < 0.05,
                "{label} total {n} far from {expected_total}"
            );
        }
    }

    #[test]
    fn calendar_generator_injects_at_most_once_per_slot() {
        // Two certain generators (p=1, forced asymmetric companion keeps
        // the calendar) must inject exactly once each, every slot.
        let mut batch = BatchStochasticInjector::new(StochasticInjector::new(vec![
            GeneratorSpec::new(vec![(path(0), 0.5), (path(1), 0.5)]).unwrap(),
            GeneratorSpec::bernoulli(path(2), 0.25).unwrap(),
        ]));
        assert!(!batch.is_dense());
        let mut rng = root_rng(8);
        let mut buf = Vec::new();
        for slot in 0..2_000 {
            batch.inject_into(slot, &mut rng, &mut buf);
            let from_certain = buf.iter().filter(|r| r.hop(0).unwrap().index() < 2).count();
            assert_eq!(from_certain, 1, "certain generator must fire every slot");
            assert!(buf.len() <= 2);
        }
    }

    #[test]
    fn certain_dense_generators_fire_every_slot() {
        let m = 8;
        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m).map(path), 1.0).unwrap());
        assert!(batch.is_dense());
        let mut rng = root_rng(9);
        let mut buf = Vec::new();
        for slot in 0..500 {
            batch.inject_into(slot, &mut rng, &mut buf);
            assert_eq!(buf.len(), m as usize);
        }
    }

    #[test]
    fn skipped_slots_are_tolerated() {
        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..16).map(path), 0.02).unwrap());
        let mut rng = root_rng(12);
        let mut buf = Vec::new();
        let mut total = 0usize;
        // Query every 10th slot: scheduled entries in the gaps must be
        // rescheduled, not dumped into the queried slot.
        for step in 0..20_000u64 {
            batch.inject_into(step * 10, &mut rng, &mut buf);
            assert!(buf.len() <= 16);
            total += buf.len();
        }
        // Each queried slot is still Bernoulli(0.02) per generator:
        // expected 16·0.02·20000 = 6400.
        assert!(
            (total as f64 - 6400.0).abs() < 400.0,
            "skip-querying distorted the rate: {total}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        for p in [0.005, 0.4] {
            let make =
                || BatchStochasticInjector::from(uniform_generators((0..32).map(path), p).unwrap());
            let run = |mut injector: BatchStochasticInjector| -> Vec<usize> {
                let mut rng = root_rng(77);
                let mut buf = Vec::new();
                let mut trace = Vec::new();
                for slot in 0..5_000 {
                    injector.inject_into(slot, &mut rng, &mut buf);
                    trace.extend(buf.iter().map(|r| r.hop(0).unwrap().index()));
                    trace.push(usize::MAX); // slot separator
                }
                trace
            };
            assert_eq!(run(make()), run(make()), "p = {p} stream diverged");
        }
    }
}
