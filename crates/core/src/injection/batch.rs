//! O(1)-amortized batch sampling for the stochastic injection model.
//!
//! [`StochasticInjector`] walks all `m` generators every slot — one
//! uniform draw each — so at `m = 1024` an *idle* slot (no injection at
//! all) still costs `m` RNG draws and CDF walks, and sweeps over large
//! SINR substrates are floor-limited by the injector rather than by the
//! SINR kernel it feeds. The paper's model (Section 2.1) only requires
//! injections to be i.i.d. per slot and independent across generators —
//! exactly the structure that admits standard discrete-event skip-ahead
//! sampling:
//!
//! * **Skip-ahead calendar** (sparse regimes): for a Bernoulli(p)
//!   generator the gap to its next injecting slot is geometric, sampled
//!   in O(1) as `⌊ln u / ln(1−p)⌋` with `u` uniform in `(0, 1]`. Each
//!   generator keeps exactly one pending entry in a min-heap keyed by
//!   slot; a slot's cost is a heap peek when idle and `O(log m)` per
//!   actual injection otherwise.
//! * **Dense per-slot batch** (the symmetric `uniform_generators`
//!   workload): when every generator shares one probability `p`, the
//!   set of injecting generators in a slot is a Binomial(m, p) batch,
//!   sampled directly by geometric index skipping *within* the slot —
//!   `O(1 + k)` where `k` is the number of packets actually injected,
//!   with no per-slot heap churn.
//! * **Counting batch** (dense symmetric workloads): when the expected
//!   batch is large (`p·m ≥` [`COUNTING_MIN_EXPECTED_PER_SLOT`]), the
//!   geometric walk's draw-per-packet overhead is itself replaced by
//!   one CDF-inverted Binomial(m, p) *count* draw plus a Floyd
//!   `k`-subset sample of the injecting indices — `1 + k` uniform
//!   draws per slot instead of `1 + 2k`, and no `ln` per packet.
//!
//! The mode is selected automatically from the generators' total
//! probabilities ([`BatchStochasticInjector::new`]). All paths draw the
//! packet's route *conditionally on injection*
//! ([`crate::injection::stochastic::GeneratorSpec::sample_conditional`]), so the per-slot distribution
//! is exactly the naive sampler's: each generator injects independently
//! with its total probability and picks route `i` with probability
//! `p_i / total`. The RNG *stream* differs from the naive sampler's
//! (skip-ahead consumes one draw per injection instead of one per
//! generator per slot), so traces are not bit-identical — equivalence is
//! distributional, pinned by the chi-square tests below.

use crate::injection::stochastic::{GeneratorSpec, StochasticInjector};
use crate::injection::Injector;
use crate::interference::InterferenceModel;
use crate::load::LinkLoad;
use crate::path::RoutePath;
use crate::route_table::{RouteId, RouteTable};
use rand::{Rng, RngCore};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Expected injections per slot above which the symmetric workload uses
/// the dense per-slot batch path instead of the calendar.
///
/// The dense path pays one geometric draw per slot plus one per packet;
/// the calendar pays a heap peek on idle slots and `O(log m)` per
/// packet. Below ~½ expected packet per slot most slots are idle and
/// the peek-only calendar wins; above it the draw-per-slot overhead is
/// amortized by the packets themselves.
pub const DENSE_MIN_EXPECTED_PER_SLOT: f64 = 0.5;

/// Expected injections per slot above which the symmetric workload
/// replaces the geometric index walk with one binomial count draw plus
/// Floyd index sampling (the counting mode).
///
/// The walk costs two draws (one of them an `ln`) per injected packet;
/// counting costs one uniform draw per packet plus a single CDF
/// inversion per slot. The crossover favors counting once batches are
/// reliably large; below it the walk's simplicity wins and tiny-batch
/// slots avoid the count table's binary search.
pub const COUNTING_MIN_EXPECTED_PER_SLOT: f64 = 8.0;

/// The sampling strategy selected for a generator set.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// No generator has positive probability: never injects.
    Idle,
    /// Symmetric dense workload: one shared `p`, per-slot binomial batch
    /// via within-slot geometric index skipping over `active`.
    Dense,
    /// Symmetric very dense workload: one Binomial(m, p) count draw by
    /// CDF inversion, then a Floyd sample of which generators fired.
    /// Requires `p < 1` (the count table's recurrence divides by both
    /// `p` and `1−p`; `p = 1` stays on [`Mode::Dense`], which handles
    /// it exactly).
    Counting,
    /// General case: per-generator geometric skip-ahead keyed in a
    /// min-heap slot calendar. Seeded lazily at the first queried slot.
    Calendar,
}

/// Tabulated Binomial(m, p) count sampler: one uniform draw inverts the
/// CDF by binary search.
///
/// The pmf is built by the mode-anchored ratio recurrence
/// `w(k+1)/w(k) = ((m−k)/(k+1))·(p/(1−p))` outward from the modal count
/// (where the pmf is largest), then normalized — anchoring at the mode
/// keeps every intermediate weight ≤ 1 relative to the anchor, so the
/// table stays finite even where `C(m,k)` alone would overflow.
#[derive(Clone, Debug)]
struct CountingSampler {
    /// `cdf[k] = P(count ≤ k)` for `k = 0..=m`; last entry is 1.
    cdf: Vec<f64>,
}

impl CountingSampler {
    /// Builds the count table for `m` generators at probability `p`,
    /// which must be strictly inside `(0, 1)`.
    fn new(m: usize, p: f64) -> Self {
        debug_assert!(m > 0 && p > 0.0 && p < 1.0);
        let q = 1.0 - p;
        let k_mode = (((m as f64 + 1.0) * p).floor() as usize).min(m);
        let mut weights = vec![0.0f64; m + 1];
        weights[k_mode] = 1.0;
        for k in k_mode..m {
            weights[k + 1] = weights[k] * ((m - k) as f64 / (k + 1) as f64) * (p / q);
        }
        for k in (1..=k_mode).rev() {
            weights[k - 1] = weights[k] * (k as f64 / (m - k + 1) as f64) * (q / p);
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|&w| {
                acc += w / total;
                acc
            })
            .collect();
        CountingSampler { cdf }
    }

    /// Draws a Binomial(m, p) count with a single uniform draw.
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let u = rng.gen::<f64>();
        // `partition_point` returns the first k with cdf[k] > u, i.e.
        // the smallest count whose CDF exceeds the draw; the min guards
        // the (probability-zero up to rounding) case u ≥ cdf[m].
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Batch sampling engine over a [`StochasticInjector`]'s generators.
///
/// Drop-in [`Injector`] with identical per-slot distribution and
/// O(1)-amortized idle-slot cost. Construct with
/// [`new`](BatchStochasticInjector::new) or via `From<StochasticInjector>`.
///
/// ```
/// use dps_core::injection::batch::BatchStochasticInjector;
/// use dps_core::injection::stochastic::uniform_generators;
/// use dps_core::injection::Injector;
/// use dps_core::prelude::*;
/// use dps_core::rng::root_rng;
///
/// let routes: Vec<_> = (0..4)
///     .map(|l| RoutePath::single_hop(LinkId(l)).shared())
///     .collect();
/// let mut injector = BatchStochasticInjector::from(uniform_generators(routes, 0.25)?);
/// let mut rng = root_rng(7);
/// let mut buf = Vec::new();
/// injector.inject_into(0, &mut rng, &mut buf);
/// assert!(buf.len() <= 4);
/// # Ok::<(), dps_core::error::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BatchStochasticInjector {
    inner: StochasticInjector,
    mode: Mode,
    /// Indices of generators with positive total probability — the only
    /// ones either path ever schedules.
    active: Vec<u32>,
    /// The shared per-generator probability of the dense path.
    dense_p: f64,
    /// Cached `ln(1 − dense_p)` — the geometric-gap denominator. One
    /// `ln_1p` per *injection* halved the dense path's transcendental
    /// budget; the gap itself is the bit-identical `u.ln() / ln_q`.
    dense_ln_q: f64,
    /// Cached `ln(1 − p)` per generator (aligned with the wrapped
    /// injector's generator list), for the calendar path.
    ln_q: Vec<f64>,
    /// Pending `(next injecting slot, generator)` entries; min-heap via
    /// `Reverse`, so ties pop in generator order (matching the naive
    /// sampler's iteration order within a slot).
    calendar: BinaryHeap<Reverse<(u64, u32)>>,
    /// Slot the calendar was seeded at; `None` until the first query.
    seeded_at: Option<u64>,
    /// The Binomial(m, p) count table of the counting path.
    counting: Option<CountingSampler>,
    /// Floyd-sample scratch: membership marks over `active` indices.
    counting_marks: Vec<bool>,
    /// Floyd-sample scratch: this slot's chosen `active` indices.
    counting_picks: Vec<u64>,
    /// Interned-id cache for the route-id lane, `[generator][choice]`.
    /// Filled on first emission of each choice; valid only against the
    /// single [`RouteTable`] this injector has been driven with.
    route_ids: Vec<Vec<Option<RouteId>>>,
}

impl BatchStochasticInjector {
    /// Wraps `inner`, selecting the batch path from its generators'
    /// total probabilities: the counting batch when every positive
    /// generator shares one probability `p < 1` and the workload
    /// expects at least [`COUNTING_MIN_EXPECTED_PER_SLOT`] packets per
    /// slot, the dense binomial batch for symmetric workloads above
    /// [`DENSE_MIN_EXPECTED_PER_SLOT`], the skip-ahead calendar
    /// otherwise.
    pub fn new(inner: StochasticInjector) -> Self {
        let totals: Vec<f64> = inner
            .generators()
            .iter()
            .map(|g| g.total_probability())
            .collect();
        let active: Vec<u32> = totals
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut dense_p = 0.0;
        let mode = if active.is_empty() {
            Mode::Idle
        } else {
            let p0 = totals[active[0] as usize];
            let symmetric = active.iter().all(|&i| totals[i as usize] == p0);
            let expected = p0 * active.len() as f64;
            if symmetric && p0 < 1.0 && expected >= COUNTING_MIN_EXPECTED_PER_SLOT {
                dense_p = p0;
                Mode::Counting
            } else if symmetric && expected >= DENSE_MIN_EXPECTED_PER_SLOT {
                dense_p = p0;
                Mode::Dense
            } else {
                Mode::Calendar
            }
        };
        let counting =
            (mode == Mode::Counting).then(|| CountingSampler::new(active.len(), dense_p));
        let counting_marks = vec![
            false;
            if mode == Mode::Counting {
                active.len()
            } else {
                0
            }
        ];
        let ln_q = totals.iter().map(|&t| (-t).ln_1p()).collect();
        let route_ids = inner
            .generators()
            .iter()
            .map(|g| vec![None; g.choices().len()])
            .collect();
        BatchStochasticInjector {
            inner,
            mode,
            active,
            dense_p,
            dense_ln_q: (-dense_p).ln_1p(),
            ln_q,
            calendar: BinaryHeap::new(),
            seeded_at: None,
            counting,
            counting_marks,
            counting_picks: Vec::new(),
            route_ids,
        }
    }

    /// The wrapped per-generator injector (specs, rates, loads).
    pub fn inner(&self) -> &StochasticInjector {
        &self.inner
    }

    /// Unwraps back into the naive per-generator sampler.
    pub fn into_inner(self) -> StochasticInjector {
        self.inner
    }

    /// Whether a dense per-slot batch path was selected (the geometric
    /// index walk or the counting sampler — both visit every slot and
    /// draw a Binomial(m, p) batch there).
    pub fn is_dense(&self) -> bool {
        matches!(self.mode, Mode::Dense | Mode::Counting)
    }

    /// Whether the counting variant of the dense path was selected
    /// (one binomial count draw plus Floyd index sampling per slot).
    pub fn is_counting(&self) -> bool {
        self.mode == Mode::Counting
    }

    /// Expected per-slot load vector `F` (delegates to the wrapped
    /// injector; batching does not change the distribution).
    pub fn expected_load(&self, num_links: usize) -> LinkLoad {
        self.inner.expected_load(num_links)
    }

    /// The injection rate `λ = ‖W·F‖∞` under `model`.
    pub fn rate<M: InterferenceModel + ?Sized>(&self, model: &M) -> f64 {
        self.inner.rate(model)
    }

    /// Seeds every active generator's first pending slot from `slot`.
    fn seed_calendar(&mut self, slot: u64, rng: &mut dyn RngCore) {
        seed_calendar_parts(
            slot,
            self.inner.generators(),
            &self.active,
            &self.ln_q,
            &mut self.calendar,
            &mut self.seeded_at,
            rng,
        );
    }
}

/// Split-borrow view of the sampling-mode state, so the inject paths
/// can lend `emit` closures mutable access to caller-side output state
/// (the output buffer, the id cache, a `RouteTable`) while the mode
/// machinery holds its own `&mut` borrows of the calendar and scratch.
struct ModeParts<'a> {
    mode: &'a Mode,
    active: &'a [u32],
    dense_p: f64,
    dense_ln_q: f64,
    ln_q: &'a [f64],
    calendar: &'a mut BinaryHeap<Reverse<(u64, u32)>>,
    seeded_at: &'a mut Option<u64>,
    counting: &'a Option<CountingSampler>,
    counting_marks: &'a mut [bool],
    counting_picks: &'a mut Vec<u64>,
}

/// Runs the selected sampling mode for `slot`, handing each firing
/// generator's index to `emit` (which draws the route conditional on
/// injection — one draw for multi-choice generators, none otherwise).
fn run_mode(
    parts: ModeParts<'_>,
    slot: u64,
    generators: &[GeneratorSpec],
    rng: &mut dyn RngCore,
    emit: &mut dyn FnMut(u32, &mut dyn RngCore),
) {
    match parts.mode {
        Mode::Idle => {}
        Mode::Dense => run_dense(parts.active, parts.dense_p, parts.dense_ln_q, rng, emit),
        Mode::Counting => run_counting(
            parts.active,
            parts
                .counting
                .as_ref()
                .expect("counting mode has a sampler"),
            parts.counting_marks,
            parts.counting_picks,
            rng,
            emit,
        ),
        Mode::Calendar => run_calendar(
            slot,
            generators,
            parts.active,
            parts.ln_q,
            parts.calendar,
            parts.seeded_at,
            rng,
            emit,
        ),
    }
}

/// Seeds every active generator's first pending slot from `slot`
/// (split-borrow form shared by the inject paths and the hint query).
fn seed_calendar_parts(
    slot: u64,
    generators: &[GeneratorSpec],
    active: &[u32],
    ln_q: &[f64],
    calendar: &mut BinaryHeap<Reverse<(u64, u32)>>,
    seeded_at: &mut Option<u64>,
    rng: &mut dyn RngCore,
) {
    for &i in active {
        let p = generators[i as usize].total_probability();
        let gap = geometric_gap_cached(p, ln_q[i as usize], rng);
        if let Some(next) = slot.checked_add(gap) {
            calendar.push(Reverse((next, i)));
        }
    }
    *seeded_at = Some(slot);
}

/// Calendar-mode slot: pop every entry due at `slot`, emitting each and
/// rescheduling it one fresh geometric gap ahead.
#[allow(clippy::too_many_arguments)]
fn run_calendar(
    slot: u64,
    generators: &[GeneratorSpec],
    active: &[u32],
    ln_q: &[f64],
    calendar: &mut BinaryHeap<Reverse<(u64, u32)>>,
    seeded_at: &mut Option<u64>,
    rng: &mut dyn RngCore,
    emit: &mut dyn FnMut(u32, &mut dyn RngCore),
) {
    if seeded_at.is_none() {
        seed_calendar_parts(slot, generators, active, ln_q, calendar, seeded_at, rng);
    }
    while let Some(&Reverse((due, i))) = calendar.peek() {
        if due > slot {
            break;
        }
        calendar.pop();
        let p = generators[i as usize].total_probability();
        let lq = ln_q[i as usize];
        if due < slot {
            // The entry came due in a slot that was never queried
            // (the caller skipped ahead). The geometric law is
            // memoryless, so rescheduling with a fresh gap from the
            // current slot reproduces exactly the conditional
            // distribution of "next injection at or after `slot`".
            if let Some(next) = slot.checked_add(geometric_gap_cached(p, lq, rng)) {
                calendar.push(Reverse((next, i)));
            }
            continue;
        }
        emit(i, rng);
        if let Some(next) = slot
            .checked_add(1)
            .and_then(|s| s.checked_add(geometric_gap_cached(p, lq, rng)))
        {
            calendar.push(Reverse((next, i)));
        }
    }
}

/// Dense-mode slot: geometric index skipping over the active
/// generators. Each is included independently with probability `p`, so
/// the emitted batch size is Binomial(|active|, p) — without ever
/// touching the generators that stay silent this slot.
fn run_dense(
    active: &[u32],
    p: f64,
    ln_q: f64,
    rng: &mut dyn RngCore,
    emit: &mut dyn FnMut(u32, &mut dyn RngCore),
) {
    let len = active.len() as u64;
    let mut j = geometric_gap_cached(p, ln_q, rng);
    while j < len {
        emit(active[j as usize], rng);
        j = match j
            .checked_add(1)
            .and_then(|j| j.checked_add(geometric_gap_cached(p, ln_q, rng)))
        {
            Some(next) => next,
            None => break,
        };
    }
}

/// Counting-mode slot: draw the batch size `k ~ Binomial(|active|, p)`
/// with one CDF inversion, then pick *which* `k` generators fired with
/// Floyd's uniform `k`-subset algorithm (`k` bounded draws, no
/// rejection). Emission is in ascending generator order, matching the
/// naive sampler's and the geometric walk's within-slot order.
fn run_counting(
    active: &[u32],
    sampler: &CountingSampler,
    marks: &mut [bool],
    picks: &mut Vec<u64>,
    rng: &mut dyn RngCore,
    emit: &mut dyn FnMut(u32, &mut dyn RngCore),
) {
    let len = active.len();
    let k = sampler.sample(rng);
    if k == 0 {
        return;
    }
    if k >= len {
        for &g in active {
            emit(g, rng);
        }
        return;
    }
    picks.clear();
    // Floyd: for j in m−k..m, draw t uniform in [0, j]; take t unless
    // already taken, else take j. Every k-subset is equally likely.
    for j in (len - k)..len {
        let t = rng.gen_range(0..j as u64 + 1) as usize;
        let chosen = if marks[t] { j } else { t };
        marks[chosen] = true;
        picks.push(chosen as u64);
    }
    picks.sort_unstable();
    for &idx in picks.iter() {
        marks[idx as usize] = false;
        emit(active[idx as usize], rng);
    }
}

impl From<StochasticInjector> for BatchStochasticInjector {
    fn from(inner: StochasticInjector) -> Self {
        BatchStochasticInjector::new(inner)
    }
}

impl Injector for BatchStochasticInjector {
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        let mut out = Vec::new();
        self.inject_into(slot, rng, &mut out);
        out
    }

    fn inject_into(&mut self, slot: u64, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        out.clear();
        let BatchStochasticInjector {
            inner,
            mode,
            active,
            dense_p,
            dense_ln_q,
            ln_q,
            calendar,
            seeded_at,
            counting,
            counting_marks,
            counting_picks,
            ..
        } = self;
        let generators = inner.generators();
        let parts = ModeParts {
            mode,
            active,
            dense_p: *dense_p,
            dense_ln_q: *dense_ln_q,
            ln_q,
            calendar,
            seeded_at,
            counting,
            counting_marks,
            counting_picks,
        };
        run_mode(parts, slot, generators, rng, &mut |g, rng| {
            if let Some(route) = generators[g as usize].sample_conditional(rng) {
                out.push(route);
            }
        });
    }

    /// Calendar mode answers from its min-heap (seeding it lazily on a
    /// first-ever query); the dense modes may inject every slot, so the
    /// hint is `after` itself; idle never injects again.
    fn next_active_slot(&mut self, after: u64, rng: &mut dyn RngCore) -> Option<u64> {
        match self.mode {
            Mode::Idle => Some(u64::MAX),
            Mode::Dense | Mode::Counting => Some(after),
            Mode::Calendar => {
                if self.seeded_at.is_none() {
                    self.seed_calendar(after, rng);
                }
                Some(
                    self.calendar
                        .peek()
                        .map_or(u64::MAX, |&Reverse((due, _))| due.max(after)),
                )
            }
        }
    }

    fn interned_capable(&self) -> bool {
        true
    }

    /// The id cache is filled against the first `table` this injector
    /// sees; driving one injector against multiple distinct tables is a
    /// contract violation (ids from the first table would be replayed
    /// into the second).
    fn inject_interned_into(
        &mut self,
        slot: u64,
        rng: &mut dyn RngCore,
        table: &mut RouteTable,
        out: &mut Vec<RouteId>,
    ) {
        out.clear();
        let BatchStochasticInjector {
            inner,
            mode,
            active,
            dense_p,
            dense_ln_q,
            ln_q,
            calendar,
            seeded_at,
            counting,
            counting_marks,
            counting_picks,
            route_ids,
        } = self;
        let generators = inner.generators();
        let parts = ModeParts {
            mode,
            active,
            dense_p: *dense_p,
            dense_ln_q: *dense_ln_q,
            ln_q,
            calendar,
            seeded_at,
            counting,
            counting_marks,
            counting_picks,
        };
        run_mode(parts, slot, generators, rng, &mut |g, rng| {
            if let Some(choice) = generators[g as usize].sample_conditional_index(rng) {
                let cache = &mut route_ids[g as usize];
                let id = cache[choice].unwrap_or_else(|| {
                    // First emission of this choice: intern once, then
                    // replay the id for the rest of the run. Interning
                    // lazily in emission order assigns exactly the ids
                    // the `Arc` lane's arrival stream would have.
                    let id = table.intern(&generators[g as usize].choices()[choice].0);
                    cache[choice] = Some(id);
                    id
                });
                out.push(id);
            }
        });
    }
}

/// Samples the geometric skip-ahead gap: the number of non-injecting
/// slots a Bernoulli(`p`) generator waits before its next injection,
/// `P(gap = k) = (1−p)ᵏ·p`, in O(1) via inversion:
/// `⌊ln u / ln(1−p)⌋` with `u` uniform in `(0, 1]`.
///
/// `p ≥ 1` injects every slot (gap 0); `p ≤ 0` never injects
/// (`u64::MAX`, clamped — callers drop entries that overflow the slot
/// horizon).
pub fn geometric_gap(p: f64, rng: &mut dyn RngCore) -> u64 {
    geometric_gap_cached(p, (-p).ln_1p(), rng)
}

/// [`geometric_gap`] with the denominator `ln(1 − p)` precomputed (the
/// injector caches it per generator: one `ln_1p` per construction
/// instead of one per injection). Bit-identical to [`geometric_gap`]:
/// same draw, same division.
fn geometric_gap_cached(p: f64, ln_q: f64, rng: &mut dyn RngCore) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    // `gen::<f64>()` is uniform in [0, 1); reflect to (0, 1] so `ln`
    // never sees zero. The denominator is `ln(1−p)` via `ln_1p`, which
    // stays exact (≈ −p) for tiny p where `(1.0 - p).ln()` would round
    // to zero and the division would collapse every gap to 0.
    let u = 1.0 - rng.gen::<f64>();
    let gap = u.ln() / ln_q;
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        // Truncation of a non-negative finite float is the floor.
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::injection::stochastic::{uniform_generators, GeneratorSpec};
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    /// χ² statistic of observed counts against expected counts.
    fn chi_square(observed: &[f64], expected: &[f64]) -> f64 {
        observed
            .iter()
            .zip(expected)
            .map(|(o, e)| {
                assert!(*e > 0.0, "expected count must be positive");
                (o - e).powi(2) / e
            })
            .sum()
    }

    #[test]
    fn mode_selection_follows_totals() {
        let dense =
            BatchStochasticInjector::from(uniform_generators((0..8).map(path), 0.25).unwrap());
        assert!(dense.is_dense(), "8 × 0.25 = 2 expected/slot is dense");

        let sparse =
            BatchStochasticInjector::from(uniform_generators((0..8).map(path), 0.01).unwrap());
        assert!(!sparse.is_dense(), "8 × 0.01 expected/slot is sparse");

        let asymmetric = BatchStochasticInjector::from(StochasticInjector::new(vec![
            GeneratorSpec::bernoulli(path(0), 0.9).unwrap(),
            GeneratorSpec::bernoulli(path(1), 0.5).unwrap(),
        ]));
        assert!(!asymmetric.is_dense(), "mixed totals use the calendar");

        let mut idle =
            BatchStochasticInjector::from(StochasticInjector::new(vec![GeneratorSpec::bernoulli(
                path(0),
                0.0,
            )
            .unwrap()]));
        let mut rng = root_rng(1);
        for slot in 0..100 {
            assert!(idle.inject(slot, &mut rng).is_empty());
        }
    }

    #[test]
    fn geometric_gap_matches_its_law() {
        let mut rng = root_rng(5);
        let p = 0.2;
        let n = 200_000;
        let mut counts = [0u64; 4];
        let mut tail = 0u64;
        for _ in 0..n {
            let g = geometric_gap(p, &mut rng);
            if (g as usize) < counts.len() {
                counts[g as usize] += 1;
            } else {
                tail += 1;
            }
        }
        let observed: Vec<f64> = counts
            .iter()
            .map(|&c| c as f64)
            .chain([tail as f64])
            .collect();
        let mut expected: Vec<f64> = (0..counts.len())
            .map(|k| n as f64 * (1.0 - p).powi(k as i32) * p)
            .collect();
        expected.push(n as f64 - expected.iter().sum::<f64>());
        // df = 4; critical value at α = 0.001 is 18.47.
        let chi2 = chi_square(&observed, &expected);
        assert!(chi2 < 18.47, "geometric gap law off: χ² = {chi2}");
        assert_eq!(geometric_gap(1.0, &mut rng), 0);
        assert_eq!(geometric_gap(0.0, &mut rng), u64::MAX);
    }

    /// Regression: for p below ~2⁻⁵², `1.0 − p` rounds to `1.0`, so a
    /// naive `(1.0 − p).ln()` denominator is `0` and every gap
    /// collapses to `-inf as u64 = 0` — a generator meant to fire once
    /// per ~10¹⁷ slots would fire *every* slot. `ln_1p` keeps the
    /// denominator ≈ −p.
    #[test]
    fn geometric_gap_survives_tiny_probabilities() {
        let mut rng = root_rng(6);
        for _ in 0..100 {
            let gap = geometric_gap(1e-17, &mut rng);
            assert!(
                gap > 1_000_000_000,
                "tiny-p gap collapsed to {gap} (expected ~10¹⁷)"
            );
        }
        // And a calendar over such a generator stays silent.
        let mut batch =
            BatchStochasticInjector::new(StochasticInjector::new(vec![GeneratorSpec::bernoulli(
                path(0),
                1e-17,
            )
            .unwrap()]));
        let mut rng = root_rng(7);
        for slot in 0..10_000 {
            assert!(batch.inject(slot, &mut rng).is_empty());
        }
    }

    #[test]
    fn dense_batch_matches_naive_rate_and_occupancy() {
        let m = 256;
        let p = 0.3;
        let slots = 20_000u64;
        let expected = m as f64 * p;

        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m as u32).map(path), p).unwrap());
        assert!(batch.is_dense());
        let mut naive = uniform_generators((0..m as u32).map(path), p).unwrap();

        let mut rng_b = root_rng(21);
        let mut rng_n = root_rng(22);
        let mut buf = Vec::new();
        let (mut total_b, mut total_n) = (0u64, 0u64);
        let mut per_generator = vec![0u64; m];
        for slot in 0..slots {
            batch.inject_into(slot, &mut rng_b, &mut buf);
            assert!(buf.len() <= m, "more packets than generators");
            total_b += buf.len() as u64;
            for route in &buf {
                per_generator[route.hop(0).unwrap().index()] += 1;
            }
            total_n += naive.inject(slot, &mut rng_n).len() as u64;
        }
        let mean_b = total_b as f64 / slots as f64;
        let mean_n = total_n as f64 / slots as f64;
        assert!(
            (mean_b - expected).abs() < 0.5,
            "batch mean {mean_b} vs expected {expected}"
        );
        assert!(
            (mean_b - mean_n).abs() < 1.0,
            "batch mean {mean_b} vs naive mean {mean_n}"
        );
        // Per-generator occupancy is uniform: χ² over m cells, each
        // expecting slots·p. df = 255; critical at α ≈ 0.001 is ~330.
        let observed: Vec<f64> = per_generator.iter().map(|&c| c as f64).collect();
        let expected_cells = vec![slots as f64 * p; m];
        let chi2 = chi_square(&observed, &expected_cells);
        assert!(chi2 < 330.0, "per-generator occupancy skewed: χ² = {chi2}");
    }

    #[test]
    fn sparse_calendar_matches_naive_rate() {
        let m = 64;
        let p = 0.004;
        let slots = 400_000u64;
        let expected = m as f64 * p; // 0.256 packets/slot → calendar

        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m as u32).map(path), p).unwrap());
        assert!(!batch.is_dense());
        let mut naive = uniform_generators((0..m as u32).map(path), p).unwrap();

        let mut rng_b = root_rng(31);
        let mut rng_n = root_rng(32);
        let mut buf = Vec::new();
        let (mut total_b, mut total_n) = (0u64, 0u64);
        for slot in 0..slots {
            batch.inject_into(slot, &mut rng_b, &mut buf);
            assert!(buf.len() <= m);
            total_b += buf.len() as u64;
            total_n += naive.inject(slot, &mut rng_n).len() as u64;
        }
        let mean_b = total_b as f64 / slots as f64;
        let mean_n = total_n as f64 / slots as f64;
        assert!(
            (mean_b - expected).abs() < 0.01,
            "calendar mean {mean_b} vs expected {expected}"
        );
        assert!(
            (mean_b - mean_n).abs() < 0.02,
            "calendar mean {mean_b} vs naive mean {mean_n}"
        );
    }

    #[test]
    fn per_choice_distribution_matches_naive_chi_square() {
        // A mixture generator plus an asymmetric companion forces the
        // calendar; the route distribution conditional on injection must
        // match the naive sampler's `p_i / total`.
        let weights = [0.05, 0.03, 0.02];
        let total: f64 = weights.iter().sum();
        let make = || {
            StochasticInjector::new(vec![
                GeneratorSpec::new(
                    weights
                        .iter()
                        .enumerate()
                        .map(|(i, &w)| (path(i as u32), w))
                        .collect(),
                )
                .unwrap(),
                GeneratorSpec::bernoulli(path(9), 0.01).unwrap(),
            ])
        };
        let slots = 300_000u64;
        let run = |injector: &mut dyn Injector, seed: u64| -> Vec<f64> {
            let mut rng = root_rng(seed);
            let mut counts = vec![0f64; weights.len()];
            let mut buf = Vec::new();
            for slot in 0..slots {
                injector.inject_into(slot, &mut rng, &mut buf);
                for route in &buf {
                    let link = route.hop(0).unwrap().index();
                    if link < weights.len() {
                        counts[link] += 1.0;
                    }
                }
            }
            counts
        };
        let mut batch = BatchStochasticInjector::new(make());
        assert!(!batch.is_dense());
        let mut naive = make();
        let batch_counts = run(&mut batch, 41);
        let naive_counts = run(&mut naive, 42);

        for (label, counts) in [("batch", &batch_counts), ("naive", &naive_counts)] {
            let n: f64 = counts.iter().sum();
            let expected: Vec<f64> = weights.iter().map(|w| n * w / total).collect();
            // df = 2; critical value at α = 0.001 is 13.82.
            let chi2 = chi_square(counts, &expected);
            assert!(chi2 < 13.82, "{label} per-choice skew: χ² = {chi2}");
        }
        // And the two samplers' totals agree with the analytic rate.
        let expected_total = slots as f64 * total;
        for (label, counts) in [("batch", &batch_counts), ("naive", &naive_counts)] {
            let n: f64 = counts.iter().sum();
            assert!(
                (n - expected_total).abs() / expected_total < 0.05,
                "{label} total {n} far from {expected_total}"
            );
        }
    }

    #[test]
    fn calendar_generator_injects_at_most_once_per_slot() {
        // Two certain generators (p=1, forced asymmetric companion keeps
        // the calendar) must inject exactly once each, every slot.
        let mut batch = BatchStochasticInjector::new(StochasticInjector::new(vec![
            GeneratorSpec::new(vec![(path(0), 0.5), (path(1), 0.5)]).unwrap(),
            GeneratorSpec::bernoulli(path(2), 0.25).unwrap(),
        ]));
        assert!(!batch.is_dense());
        let mut rng = root_rng(8);
        let mut buf = Vec::new();
        for slot in 0..2_000 {
            batch.inject_into(slot, &mut rng, &mut buf);
            let from_certain = buf.iter().filter(|r| r.hop(0).unwrap().index() < 2).count();
            assert_eq!(from_certain, 1, "certain generator must fire every slot");
            assert!(buf.len() <= 2);
        }
    }

    #[test]
    fn certain_dense_generators_fire_every_slot() {
        let m = 8;
        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m).map(path), 1.0).unwrap());
        assert!(batch.is_dense());
        let mut rng = root_rng(9);
        let mut buf = Vec::new();
        for slot in 0..500 {
            batch.inject_into(slot, &mut rng, &mut buf);
            assert_eq!(buf.len(), m as usize);
        }
    }

    #[test]
    fn skipped_slots_are_tolerated() {
        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..16).map(path), 0.02).unwrap());
        let mut rng = root_rng(12);
        let mut buf = Vec::new();
        let mut total = 0usize;
        // Query every 10th slot: scheduled entries in the gaps must be
        // rescheduled, not dumped into the queried slot.
        for step in 0..20_000u64 {
            batch.inject_into(step * 10, &mut rng, &mut buf);
            assert!(buf.len() <= 16);
            total += buf.len();
        }
        // Each queried slot is still Bernoulli(0.02) per generator:
        // expected 16·0.02·20000 = 6400.
        assert!(
            (total as f64 - 6400.0).abs() < 400.0,
            "skip-querying distorted the rate: {total}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        for p in [0.005, 0.4] {
            let make =
                || BatchStochasticInjector::from(uniform_generators((0..32).map(path), p).unwrap());
            let run = |mut injector: BatchStochasticInjector| -> Vec<usize> {
                let mut rng = root_rng(77);
                let mut buf = Vec::new();
                let mut trace = Vec::new();
                for slot in 0..5_000 {
                    injector.inject_into(slot, &mut rng, &mut buf);
                    trace.extend(buf.iter().map(|r| r.hop(0).unwrap().index()));
                    trace.push(usize::MAX); // slot separator
                }
                trace
            };
            assert_eq!(run(make()), run(make()), "p = {p} stream diverged");
        }
    }

    #[test]
    fn counting_mode_selection_follows_expected_batch() {
        // 256 × 0.3 = 76.8 expected/slot: counting.
        let big =
            BatchStochasticInjector::from(uniform_generators((0..256).map(path), 0.3).unwrap());
        assert!(big.is_counting() && big.is_dense());
        // 16 × 0.25 = 4 expected/slot: dense walk, below the counting bar.
        let mid =
            BatchStochasticInjector::from(uniform_generators((0..16).map(path), 0.25).unwrap());
        assert!(mid.is_dense() && !mid.is_counting());
        // p = 1 always stays on the exact dense walk (the count table's
        // recurrence needs p < 1), however large the batch.
        let certain =
            BatchStochasticInjector::from(uniform_generators((0..64).map(path), 1.0).unwrap());
        assert!(certain.is_dense() && !certain.is_counting());
    }

    #[test]
    fn counting_batch_matches_naive_count_distribution() {
        let m = 128usize;
        let p = 0.25;
        let slots = 30_000u64;
        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..m as u32).map(path), p).unwrap());
        assert!(batch.is_counting());
        let mut naive = uniform_generators((0..m as u32).map(path), p).unwrap();

        let run_counts = |inject: &mut dyn FnMut(u64, &mut Vec<Arc<RoutePath>>),
                          per_generator: &mut [u64]|
         -> (f64, f64) {
            let mut buf = Vec::new();
            let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
            for slot in 0..slots {
                inject(slot, &mut buf);
                assert!(buf.len() <= m);
                for route in buf.iter() {
                    per_generator[route.hop(0).unwrap().index()] += 1;
                }
                let k = buf.len() as f64;
                sum += k;
                sum_sq += k * k;
            }
            let mean = sum / slots as f64;
            (mean, sum_sq / slots as f64 - mean * mean)
        };

        let mut rng_b = root_rng(51);
        let mut per_gen_b = vec![0u64; m];
        let (mean_b, var_b) = run_counts(
            &mut |slot, buf| batch.inject_into(slot, &mut rng_b, buf),
            &mut per_gen_b,
        );
        let mut rng_n = root_rng(52);
        let mut per_gen_n = vec![0u64; m];
        let (mean_n, var_n) = run_counts(
            &mut |slot, buf| {
                *buf = naive.inject(slot, &mut rng_n);
            },
            &mut per_gen_n,
        );

        // Binomial(128, 0.25): mean 32, variance 24.
        let (exp_mean, exp_var) = (m as f64 * p, m as f64 * p * (1.0 - p));
        assert!(
            (mean_b - exp_mean).abs() < 0.2,
            "counting mean {mean_b} vs {exp_mean}"
        );
        assert!(
            (mean_b - mean_n).abs() < 0.3,
            "counting mean {mean_b} vs naive {mean_n}"
        );
        assert!(
            (var_b - exp_var).abs() / exp_var < 0.05,
            "counting variance {var_b} vs {exp_var}"
        );
        assert!(
            (var_b - var_n).abs() / exp_var < 0.08,
            "counting variance {var_b} vs naive {var_n}"
        );
        // Floyd sampling must keep the injecting set uniform over
        // generators: χ² over 128 cells, df = 127, α ≈ 0.001 → ~181.
        let observed: Vec<f64> = per_gen_b.iter().map(|&c| c as f64).collect();
        let expected = vec![slots as f64 * p; m];
        let chi2 = chi_square(&observed, &expected);
        assert!(chi2 < 181.0, "counting occupancy skewed: χ² = {chi2}");
    }

    #[test]
    fn counting_batch_preserves_route_mixture() {
        // Symmetric totals (0.3 each) with two choices per generator
        // force Counting while still exercising the conditional route
        // draw; each choice must get half the emissions.
        let m = 64u32;
        let make = || {
            StochasticInjector::new(
                (0..m)
                    .map(|i| {
                        GeneratorSpec::new(vec![(path(2 * i), 0.15), (path(2 * i + 1), 0.15)])
                            .unwrap()
                    })
                    .collect(),
            )
        };
        let mut batch = BatchStochasticInjector::new(make());
        assert!(batch.is_counting());
        let mut rng = root_rng(61);
        let mut buf = Vec::new();
        let (mut even, mut odd) = (0u64, 0u64);
        for slot in 0..20_000u64 {
            batch.inject_into(slot, &mut rng, &mut buf);
            for route in &buf {
                if route.hop(0).unwrap().index() % 2 == 0 {
                    even += 1;
                } else {
                    odd += 1;
                }
            }
        }
        let total = (even + odd) as f64;
        let ratio = even as f64 / total;
        assert!(
            (ratio - 0.5).abs() < 0.01,
            "choice mixture skewed: {even} even vs {odd} odd"
        );
        // And the rate matches 64 × 0.3 = 19.2 packets/slot.
        let mean = total / 20_000.0;
        assert!((mean - 19.2).abs() < 0.2, "counting mixture mean {mean}");
    }

    /// The skip-ahead contract the event engine relies on: driving the
    /// injector only at hinted slots must reproduce the every-slot
    /// stream bit for bit. Jumping exactly to the heap's next due slot
    /// never strands an entry in the past, so the memoryless reschedule
    /// path (which *would* consume extra draws) is never taken.
    #[test]
    fn hint_driven_querying_matches_every_slot_stream() {
        let horizon = 200_000u64;
        for (label, make) in [
            (
                "sparse-uniform",
                Box::new(|| {
                    BatchStochasticInjector::from(
                        uniform_generators((0..64).map(path), 0.0003).unwrap(),
                    )
                }) as Box<dyn Fn() -> BatchStochasticInjector>,
            ),
            (
                "asymmetric",
                Box::new(|| {
                    BatchStochasticInjector::new(StochasticInjector::new(vec![
                        GeneratorSpec::new(vec![(path(0), 0.001), (path(1), 0.002)]).unwrap(),
                        GeneratorSpec::bernoulli(path(2), 0.0007).unwrap(),
                    ]))
                }),
            ),
        ] {
            let mut per_slot = make();
            let mut rng_a = root_rng(91);
            let mut buf = Vec::new();
            let mut stream_a = Vec::new();
            for slot in 0..horizon {
                per_slot.inject_into(slot, &mut rng_a, &mut buf);
                for route in &buf {
                    stream_a.push((slot, route.hop(0).unwrap().index()));
                }
            }

            let mut hinted = make();
            let mut rng_b = root_rng(91);
            let mut stream_b = Vec::new();
            let mut slot = 0u64;
            while slot < horizon {
                hinted.inject_into(slot, &mut rng_b, &mut buf);
                for route in &buf {
                    stream_b.push((slot, route.hop(0).unwrap().index()));
                }
                match hinted.next_active_slot(slot + 1, &mut rng_b) {
                    Some(next) if next < horizon => slot = next,
                    _ => break,
                }
            }
            assert_eq!(stream_a, stream_b, "{label}: hinted stream diverged");
            assert!(
                !stream_a.is_empty(),
                "{label}: degenerate test, nothing injected"
            );
        }
    }

    /// Lazy seeding far from the origin must behave like seeding at 0:
    /// gaps are relative, so a first query at a huge slot neither
    /// panics nor distorts the rate (entries that would overflow the
    /// u64 horizon are dropped, not wrapped).
    #[test]
    fn lazy_seed_at_late_slot_keeps_rate_and_saturates() {
        let start = u64::MAX - 2_000_000;
        let mut batch =
            BatchStochasticInjector::from(uniform_generators((0..32).map(path), 0.01).unwrap());
        let mut rng = root_rng(101);
        let mut buf = Vec::new();
        let mut total = 0u64;
        let slots = 300_000u64;
        for slot in start..start + slots {
            batch.inject_into(slot, &mut rng, &mut buf);
            total += buf.len() as u64;
        }
        let mean = total as f64 / slots as f64;
        assert!(
            (mean - 0.32).abs() < 0.02,
            "late-seeded rate off: {mean} vs 0.32"
        );
        // The hint saturates instead of wrapping past u64::MAX.
        let hint = batch
            .next_active_slot(u64::MAX - 1, &mut rng)
            .expect("calendar always answers");
        assert!(hint >= u64::MAX - 1);

        // And a generator whose first gap exceeds the representable
        // horizon is silently dropped: ⌊ln u / ln(1−p)⌋ saturates to
        // u64::MAX rather than overflowing the cast.
        let mut tiny =
            BatchStochasticInjector::new(StochasticInjector::new(vec![GeneratorSpec::bernoulli(
                path(0),
                1e-300,
            )
            .unwrap()]));
        let mut rng = root_rng(102);
        assert_eq!(geometric_gap(1e-300, &mut rng), u64::MAX);
        assert!(tiny.inject(u64::MAX - 1, &mut rng).is_empty());
        assert_eq!(tiny.next_active_slot(u64::MAX, &mut rng), Some(u64::MAX));
    }

    /// The route-id lane must replay exactly the `Arc` lane's stream —
    /// same slots, same routes, same interning order — for every mode.
    #[test]
    fn interned_lane_matches_arc_lane() {
        use crate::route_table::RouteTable;
        for (label, p, m) in [
            ("calendar", 0.003, 64u32),
            ("dense", 0.2, 4),
            ("counting", 0.3, 64),
        ] {
            let make = || {
                BatchStochasticInjector::from(StochasticInjector::new(
                    (0..m)
                        .map(|i| {
                            GeneratorSpec::new(vec![
                                (path(2 * i), p / 2.0),
                                (path(2 * i + 1), p / 2.0),
                            ])
                            .unwrap()
                        })
                        .collect(),
                ))
            };
            let mut arcs = make();
            let mut ids = make();
            let mut rng_a = root_rng(111);
            let mut rng_b = root_rng(111);
            let mut table_a = RouteTable::new();
            let mut table_b = RouteTable::new();
            let mut route_buf = Vec::new();
            let mut id_buf = Vec::new();
            let mut seen = 0usize;
            for slot in 0..20_000u64 {
                arcs.inject_into(slot, &mut rng_a, &mut route_buf);
                let expected: Vec<_> = route_buf.iter().map(|r| table_a.intern(r)).collect();
                ids.inject_interned_into(slot, &mut rng_b, &mut table_b, &mut id_buf);
                assert_eq!(expected, id_buf, "{label}: slot {slot} diverged");
                seen += id_buf.len();
            }
            assert_eq!(table_a.len(), table_b.len(), "{label}: interning drifted");
            assert!(seen > 0, "{label}: degenerate test, nothing injected");
        }
    }
}
