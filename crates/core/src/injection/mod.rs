//! Packet injection models (Section 2.1 of the paper).
//!
//! Both models bound the *average interference measure* injected per slot:
//! if `F(e)` is the average number of packets whose route uses link `e`,
//! the injection rate is `λ = ‖W·F‖∞`.
//!
//! * [`stochastic`] — a finite set of independent generators, each injecting
//!   at most one packet per slot, identically distributed over time;
//! * [`adversarial`] — `(w, λ)`-bounded window adversaries: in every
//!   interval of `w` slots the measure of all injected routes is at most
//!   `λ·w`.

pub mod adversarial;
pub mod stochastic;

use crate::path::RoutePath;
use rand::RngCore;
use std::sync::Arc;

/// A source of packet injections, queried once per slot.
pub trait Injector {
    /// Routes of the packets injected at `slot`.
    ///
    /// Implementations must be driven with strictly increasing slot numbers;
    /// window adversaries rely on this to maintain their budget.
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>>;
}

impl<T: Injector + ?Sized> Injector for Box<T> {
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        (**self).inject(slot, rng)
    }
}

/// An injector that never injects; useful for draining experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInjection;

impl Injector for NoInjection {
    fn inject(&mut self, _slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        Vec::new()
    }
}

/// Replays a fixed list of `(slot, route)` pairs; useful for tests and for
/// re-running recorded adversary traces.
#[derive(Clone, Debug)]
pub struct TraceInjector {
    // Sorted by slot; `next` advances monotonically.
    events: Vec<(u64, Arc<RoutePath>)>,
    next: usize,
}

impl TraceInjector {
    /// Creates a replay injector from `(slot, route)` events.
    ///
    /// Events are sorted by slot; relative order within a slot is preserved.
    pub fn new(mut events: Vec<(u64, Arc<RoutePath>)>) -> Self {
        events.sort_by_key(|(slot, _)| *slot);
        TraceInjector { events, next: 0 }
    }

    /// Number of events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl Injector for TraceInjector {
    fn inject(&mut self, slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        let mut out = Vec::new();
        while self.next < self.events.len() && self.events[self.next].0 <= slot {
            out.push(self.events[self.next].1.clone());
            self.next += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    #[test]
    fn no_injection_is_empty() {
        let mut rng = root_rng(1);
        assert!(NoInjection.inject(0, &mut rng).is_empty());
    }

    #[test]
    fn trace_injector_replays_in_slot_order() {
        let mut rng = root_rng(1);
        let mut inj = TraceInjector::new(vec![(2, path(0)), (0, path(1)), (2, path(2))]);
        assert_eq!(inj.remaining(), 3);
        let s0 = inj.inject(0, &mut rng);
        assert_eq!(s0.len(), 1);
        assert_eq!(s0[0].hop(0), Some(LinkId(1)));
        assert!(inj.inject(1, &mut rng).is_empty());
        let s2 = inj.inject(2, &mut rng);
        assert_eq!(s2.len(), 2);
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn trace_injector_catches_up_on_skipped_slots() {
        let mut rng = root_rng(1);
        let mut inj = TraceInjector::new(vec![(0, path(0)), (5, path(1))]);
        let all = inj.inject(10, &mut rng);
        assert_eq!(all.len(), 2);
    }
}
