//! Packet injection models (Section 2.1 of the paper).
//!
//! Both models bound the *average interference measure* injected per slot:
//! if `F(e)` is the average number of packets whose route uses link `e`,
//! the injection rate is `λ = ‖W·F‖∞`.
//!
//! * [`stochastic`] — a finite set of independent generators, each injecting
//!   at most one packet per slot, identically distributed over time;
//! * [`adversarial`] — `(w, λ)`-bounded window adversaries: in every
//!   interval of `w` slots the measure of all injected routes is at most
//!   `λ·w`.

pub mod adversarial;
pub mod batch;
pub mod stochastic;

use crate::path::RoutePath;
use crate::route_table::{RouteId, RouteTable};
use rand::RngCore;
use std::sync::Arc;

/// A source of packet injections, queried once per slot.
pub trait Injector {
    /// Routes of the packets injected at `slot`.
    ///
    /// Implementations must be driven with strictly increasing slot numbers;
    /// window adversaries rely on this to maintain their budget.
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>>;

    /// Like [`inject`](Injector::inject), but writing the routes into
    /// `out` (cleared first) instead of allocating a fresh vector — the
    /// slot loop's hot path stays allocation-free on idle slots.
    ///
    /// The default delegates to `inject`; implementations on the hot
    /// path (the stochastic samplers) override it and make `inject` the
    /// delegating direction.
    fn inject_into(&mut self, slot: u64, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        out.clear();
        out.append(&mut self.inject(slot, rng));
    }

    /// Event-engine hint: the earliest slot `≥ after` at which this
    /// injector might emit a packet, or `None` when the injector cannot
    /// tell (the conservative default — the engine then steps slot by
    /// slot).
    ///
    /// Contract for `Some(s)`:
    ///
    /// * no packet is emitted at any slot in `after..s` — those slots
    ///   may safely be skipped without querying `inject_into`;
    /// * `s` itself is only a *candidate*: the injector may stay silent
    ///   there (false positives are allowed, false negatives are not);
    /// * `Some(u64::MAX)` means "never again";
    /// * the call must consume no RNG once the injector has been driven
    ///   through at least one `inject_into` (lazily seeded calendars may
    ///   draw their gaps on a first-ever query), so that skipping is a
    ///   pure reindexing of the per-slot RNG stream.
    fn next_active_slot(&mut self, _after: u64, _rng: &mut dyn RngCore) -> Option<u64> {
        None
    }

    /// Whether [`inject_interned_into`](Injector::inject_interned_into)
    /// has a native, allocation-free implementation. The simulation
    /// runner only selects the route-id lane when this is `true` (and
    /// the protocol exposes an interner); the default `false` keeps
    /// wrappers and custom injectors on the `Arc` lane.
    fn interned_capable(&self) -> bool {
        false
    }

    /// Like [`inject_into`](Injector::inject_into), but emitting
    /// interned [`RouteId`]s (resolved against `table`) instead of
    /// cloning route `Arc`s — the hot arrival lane for protocols that
    /// own a [`RouteTable`].
    ///
    /// Must consume exactly the same RNG draws and emit the same routes
    /// in the same order as `inject_into` would have; interning order
    /// (and therefore id assignment) must match what interning the
    /// `Arc` stream in arrival order would produce. The default routes
    /// through `inject_into` and interns here, which satisfies the
    /// contract but allocates; native implementations cache ids.
    fn inject_interned_into(
        &mut self,
        slot: u64,
        rng: &mut dyn RngCore,
        table: &mut RouteTable,
        out: &mut Vec<RouteId>,
    ) {
        let mut routes = Vec::new();
        self.inject_into(slot, rng, &mut routes);
        out.clear();
        out.extend(routes.iter().map(|route| table.intern(route)));
    }
}

impl<T: Injector + ?Sized> Injector for Box<T> {
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        (**self).inject(slot, rng)
    }

    fn inject_into(&mut self, slot: u64, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        (**self).inject_into(slot, rng, out)
    }

    fn next_active_slot(&mut self, after: u64, rng: &mut dyn RngCore) -> Option<u64> {
        (**self).next_active_slot(after, rng)
    }

    fn interned_capable(&self) -> bool {
        (**self).interned_capable()
    }

    fn inject_interned_into(
        &mut self,
        slot: u64,
        rng: &mut dyn RngCore,
        table: &mut RouteTable,
        out: &mut Vec<RouteId>,
    ) {
        (**self).inject_interned_into(slot, rng, table, out)
    }
}

/// An injector that never injects; useful for draining experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInjection;

impl Injector for NoInjection {
    fn inject(&mut self, _slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        Vec::new()
    }

    fn inject_into(&mut self, _slot: u64, _rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        out.clear();
    }
}

/// Replays a fixed list of `(slot, route)` pairs; useful for tests and for
/// re-running recorded adversary traces.
#[derive(Clone, Debug)]
pub struct TraceInjector {
    // Sorted by slot; `next` advances monotonically.
    events: Vec<(u64, Arc<RoutePath>)>,
    next: usize,
}

impl TraceInjector {
    /// Creates a replay injector from `(slot, route)` events.
    ///
    /// Events are sorted by slot; relative order within a slot is preserved.
    pub fn new(mut events: Vec<(u64, Arc<RoutePath>)>) -> Self {
        events.sort_by_key(|(slot, _)| *slot);
        TraceInjector { events, next: 0 }
    }

    /// Number of events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl Injector for TraceInjector {
    fn inject(&mut self, slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        let mut out = Vec::new();
        self.inject_into(slot, rng, &mut out);
        out
    }

    fn inject_into(&mut self, slot: u64, _rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        out.clear();
        while self.next < self.events.len() && self.events[self.next].0 <= slot {
            out.push(self.events[self.next].1.clone());
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    #[test]
    fn no_injection_is_empty() {
        let mut rng = root_rng(1);
        assert!(NoInjection.inject(0, &mut rng).is_empty());
    }

    #[test]
    fn trace_injector_replays_in_slot_order() {
        let mut rng = root_rng(1);
        let mut inj = TraceInjector::new(vec![(2, path(0)), (0, path(1)), (2, path(2))]);
        assert_eq!(inj.remaining(), 3);
        let s0 = inj.inject(0, &mut rng);
        assert_eq!(s0.len(), 1);
        assert_eq!(s0[0].hop(0), Some(LinkId(1)));
        assert!(inj.inject(1, &mut rng).is_empty());
        let s2 = inj.inject(2, &mut rng);
        assert_eq!(s2.len(), 2);
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn trace_injector_catches_up_on_skipped_slots() {
        let mut rng = root_rng(1);
        let mut inj = TraceInjector::new(vec![(0, path(0)), (5, path(1))]);
        let all = inj.inject(10, &mut rng);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn inject_into_clears_and_matches_inject() {
        let mut rng = root_rng(1);
        let mut buf = vec![path(9)]; // stale content must be cleared
        NoInjection.inject_into(0, &mut rng, &mut buf);
        assert!(buf.is_empty());

        let mut by_vec = TraceInjector::new(vec![(0, path(0)), (1, path(1))]);
        let mut by_buf = by_vec.clone();
        let mut buf = vec![path(9)];
        for slot in 0..3 {
            by_buf.inject_into(slot, &mut rng, &mut buf);
            let expected = by_vec.inject(slot, &mut rng);
            assert_eq!(buf.len(), expected.len());
            for (a, b) in buf.iter().zip(&expected) {
                assert_eq!(a.links(), b.links());
            }
        }
    }
}
