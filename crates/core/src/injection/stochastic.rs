//! Time-independent, finite-user stochastic injection (Section 2.1).
//!
//! A finite set of *generators* each injects at most one packet per slot.
//! The distribution is identical in every slot and independent across
//! generators and slots — exactly the three properties (a), (b), (c) the
//! paper requires. The injection rate is `λ = ‖W·F‖∞` where
//! `F(e) = Σ_g Σ_{P ∋ e} E[X_{g,P}]` counts the expected number of packets
//! per slot whose route uses `e` (with multiplicity).

use crate::error::ModelError;
use crate::injection::Injector;
use crate::interference::InterferenceModel;
use crate::load::LinkLoad;
use crate::path::RoutePath;
use rand::{Rng, RngCore};
use std::sync::Arc;

/// One packet generator: a distribution over routes, injecting at most one
/// packet per slot.
#[derive(Clone, Debug)]
pub struct GeneratorSpec {
    choices: Vec<(Arc<RoutePath>, f64)>,
    total: f64,
}

impl GeneratorSpec {
    /// Validation slack on probability sums: [`GeneratorSpec::new`]
    /// accepts totals up to `1 + ε`, and
    /// [`StochasticInjector::scaled_to_rate`] clamps per-choice products
    /// that rounding pushed up to `1 + ε` back to one.
    pub const PROBABILITY_TOLERANCE: f64 = 1e-9;

    /// Snap tolerance for totals that should be exactly one: sized for
    /// float *accumulation* error (a few ulps per choice — ten `0.1`s
    /// land one ulp below one; thousands of tiny choices stay well
    /// under `1e-12`), deliberately far tighter than
    /// [`PROBABILITY_TOLERANCE`](Self::PROBABILITY_TOLERANCE) so a
    /// user-specified sub-certain probability like `1 − 1e-10` is
    /// honoured, not silently promoted to certainty.
    pub const TOTAL_SNAP_TOLERANCE: f64 = 1e-12;

    /// Creates a generator from `(route, probability)` pairs.
    ///
    /// A total within [`TOTAL_SNAP_TOLERANCE`](Self::TOTAL_SNAP_TOLERANCE)
    /// of one is snapped to exactly `1.0`: float accumulation of
    /// probabilities that mathematically sum to one (ten `0.1`s) can land
    /// an ulp below it, and a generator meant to inject every slot must
    /// not silently skip slots with probability `≈ 2⁻⁵³`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if any probability is
    /// outside `[0, 1]` or the probabilities sum to more than one (a
    /// generator injects at most one packet per slot).
    pub fn new(choices: Vec<(Arc<RoutePath>, f64)>) -> Result<Self, ModelError> {
        let mut total = 0.0;
        for (_, p) in &choices {
            if !(0.0..=1.0).contains(p) || !p.is_finite() {
                return Err(ModelError::InvalidProbability(*p));
            }
            total += p;
        }
        if total > 1.0 + Self::PROBABILITY_TOLERANCE {
            return Err(ModelError::InvalidProbability(total));
        }
        if (total - 1.0).abs() <= Self::TOTAL_SNAP_TOLERANCE {
            total = 1.0;
        }
        Ok(GeneratorSpec { choices, total })
    }

    /// A generator injecting a single fixed route with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if `p ∉ [0, 1]`.
    pub fn bernoulli(route: Arc<RoutePath>, p: f64) -> Result<Self, ModelError> {
        GeneratorSpec::new(vec![(route, p)])
    }

    /// Total per-slot injection probability of this generator.
    pub fn total_probability(&self) -> f64 {
        self.total
    }

    /// The `(route, probability)` choices of this generator.
    pub fn choices(&self) -> &[(Arc<RoutePath>, f64)] {
        &self.choices
    }

    /// One per-slot draw: `Some(route)` with probability `total`, `None`
    /// otherwise.
    ///
    /// The injection decision compares `u` against the stored `total` —
    /// not against the re-accumulated cumulative sum, whose intermediate
    /// rounding used to let `u` land in the gap between the two and
    /// silently return `None` for a generator with total probability one.
    /// Once injection is decided, the CDF walk cannot fall off the end
    /// (`new` accumulated the same sums in the same order), but any
    /// float-rounding residue falls back to the last choice.
    fn sample(&self, rng: &mut dyn RngCore) -> Option<Arc<RoutePath>> {
        let u: f64 = rng.gen();
        if u >= self.total {
            return None;
        }
        self.pick(u).map(|i| self.choices[i].0.clone())
    }

    /// Picks a route *given that this generator injects* — the
    /// conditional distribution `p_i / total` the batch samplers need
    /// after their skip-ahead draw already decided the injection.
    ///
    /// Returns `None` only for a generator with no positive-probability
    /// choice (which never injects and should never be asked).
    pub fn sample_conditional(&self, rng: &mut dyn RngCore) -> Option<Arc<RoutePath>> {
        self.sample_conditional_index(rng)
            .map(|i| self.choices[i].0.clone())
    }

    /// [`sample_conditional`](Self::sample_conditional) returning the
    /// *choice index* instead of cloning the route `Arc` — the
    /// route-id-native injection lane resolves the index against its
    /// interned-id cache without touching the reference count.
    ///
    /// Consumes exactly the same RNG draws as `sample_conditional`
    /// (none for single-choice generators, one otherwise), so the two
    /// entry points are interchangeable mid-stream.
    pub fn sample_conditional_index(&self, rng: &mut dyn RngCore) -> Option<usize> {
        if self.total <= 0.0 || self.choices.is_empty() {
            return None;
        }
        // Single-route generators (the symmetric workload) need no draw.
        if self.choices.len() == 1 {
            return Some(0);
        }
        self.pick(rng.gen::<f64>() * self.total)
    }

    /// The CDF walk over the choices for a decided injection with
    /// `u ∈ [0, total)`: cannot fall off the end (`new` accumulated the
    /// same sums in the same order), but any float-rounding residue
    /// (e.g. a snapped total) falls back to the last choice that can
    /// actually carry traffic — never a zero-probability route.
    fn pick(&self, u: f64) -> Option<usize> {
        let mut acc = 0.0;
        for (i, (_, p)) in self.choices.iter().enumerate() {
            acc += p;
            if u < acc {
                return Some(i);
            }
        }
        self.choices
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (_, p))| *p > 0.0)
            .map(|(i, _)| i)
    }

    fn accumulate_expected_load(&self, load: &mut LinkLoad) {
        for (path, p) in &self.choices {
            for &link in path.links() {
                load.add(link, *p);
            }
        }
    }
}

/// The stochastic injection model: a finite set of independent
/// [`GeneratorSpec`]s queried once per slot.
///
/// ```
/// use dps_core::prelude::*;
/// use dps_core::rng::root_rng;
///
/// let route = RoutePath::single_hop(LinkId(0)).shared();
/// let gen = GeneratorSpec::bernoulli(route, 0.25)?;
/// let injector = StochasticInjector::new(vec![gen]);
/// let model = IdentityInterference::new(1);
/// assert!((injector.rate(&model) - 0.25).abs() < 1e-12);
/// # Ok::<(), dps_core::error::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct StochasticInjector {
    generators: Vec<GeneratorSpec>,
}

impl StochasticInjector {
    /// Creates the injector from its generators.
    pub fn new(generators: Vec<GeneratorSpec>) -> Self {
        StochasticInjector { generators }
    }

    /// The generators.
    pub fn generators(&self) -> &[GeneratorSpec] {
        &self.generators
    }

    /// Expected per-slot load vector `F`.
    pub fn expected_load(&self, num_links: usize) -> LinkLoad {
        let mut load = LinkLoad::new(num_links);
        for g in &self.generators {
            g.accumulate_expected_load(&mut load);
        }
        load
    }

    /// The injection rate `λ = ‖W·F‖∞` under `model`.
    pub fn rate<M: InterferenceModel + ?Sized>(&self, model: &M) -> f64 {
        model.measure(&self.expected_load(model.num_links()))
    }

    /// Returns a copy whose rate under `model` equals `target_rate`, by
    /// scaling every probability proportionally.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if the current rate is zero or
    /// `target_rate` is not a positive finite number, and
    /// [`ModelError::InvalidProbability`] if scaling would push a
    /// generator's total probability above one.
    pub fn scaled_to_rate<M: InterferenceModel + ?Sized>(
        &self,
        model: &M,
        target_rate: f64,
    ) -> Result<Self, ModelError> {
        if !(target_rate > 0.0 && target_rate.is_finite()) {
            return Err(ModelError::InvalidRate(target_rate));
        }
        let current = self.rate(model);
        if current <= 0.0 {
            return Err(ModelError::InvalidRate(current));
        }
        let factor = target_rate / current;
        let generators = self
            .generators
            .iter()
            .map(|g| {
                GeneratorSpec::new(
                    g.choices
                        .iter()
                        .map(|(path, p)| {
                            // An exactly-feasible target (one that needs
                            // probability exactly 1) can round `p·factor`
                            // to `1 + ε`; clamp within the same tolerance
                            // `GeneratorSpec::new` accepts for totals, so
                            // feasible targets are never rejected.
                            let scaled = p * factor;
                            let scaled = if scaled > 1.0
                                && scaled <= 1.0 + GeneratorSpec::PROBABILITY_TOLERANCE
                            {
                                1.0
                            } else {
                                scaled
                            };
                            (path.clone(), scaled)
                        })
                        .collect(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StochasticInjector { generators })
    }
}

impl Injector for StochasticInjector {
    fn inject(&mut self, _slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        self.generators
            .iter()
            .filter_map(|g| g.sample(rng))
            .collect()
    }

    fn inject_into(&mut self, _slot: u64, rng: &mut dyn RngCore, out: &mut Vec<Arc<RoutePath>>) {
        out.clear();
        out.extend(self.generators.iter().filter_map(|g| g.sample(rng)));
    }
}

/// Builds one Bernoulli generator per given route, each injecting with
/// probability `p` — the standard symmetric workload of the experiments.
///
/// # Errors
///
/// Returns [`ModelError::InvalidProbability`] if `p ∉ [0, 1]`.
pub fn uniform_generators(
    routes: impl IntoIterator<Item = Arc<RoutePath>>,
    p: f64,
) -> Result<StochasticInjector, ModelError> {
    let generators = routes
        .into_iter()
        .map(|r| GeneratorSpec::bernoulli(r, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StochasticInjector::new(generators))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::interference::{CompleteInterference, IdentityInterference};
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    fn two_hop(a: u32, b: u32) -> Arc<RoutePath> {
        RoutePath::from_links_unchecked(vec![LinkId(a), LinkId(b)]).shared()
    }

    #[test]
    fn generator_rejects_excess_probability() {
        let err = GeneratorSpec::new(vec![(path(0), 0.7), (path(1), 0.6)]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidProbability(_)));
    }

    #[test]
    fn generator_rejects_negative_probability() {
        let err = GeneratorSpec::new(vec![(path(0), -0.1)]).unwrap_err();
        assert_eq!(err, ModelError::InvalidProbability(-0.1));
    }

    #[test]
    fn expected_load_counts_path_multiplicity() {
        let g1 = GeneratorSpec::bernoulli(two_hop(0, 1), 0.5).unwrap();
        let g2 = GeneratorSpec::bernoulli(path(1), 0.25).unwrap();
        let inj = StochasticInjector::new(vec![g1, g2]);
        let f = inj.expected_load(2);
        assert!((f.get(LinkId(0)) - 0.5).abs() < 1e-12);
        assert!((f.get(LinkId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rate_depends_on_model() {
        let inj = uniform_generators([path(0), path(1)], 0.3).unwrap();
        let identity = IdentityInterference::new(2);
        let complete = CompleteInterference::new(2);
        assert!((inj.rate(&identity) - 0.3).abs() < 1e-12);
        assert!((inj.rate(&complete) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_target_rate() {
        let inj = uniform_generators([path(0), path(1)], 0.1).unwrap();
        let model = CompleteInterference::new(2);
        let scaled = inj.scaled_to_rate(&model, 0.5).unwrap();
        assert!((scaled.rate(&model) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_rejects_infeasible_target() {
        let inj = uniform_generators([path(0)], 0.5).unwrap();
        let model = IdentityInterference::new(1);
        // Scaling to rate 3 would need probability 3 > 1.
        let err = inj.scaled_to_rate(&model, 3.0).unwrap_err();
        assert!(matches!(err, ModelError::InvalidProbability(_)));
    }

    #[test]
    fn scaling_rejects_zero_base_rate() {
        let inj = StochasticInjector::new(vec![]);
        let model = IdentityInterference::new(1);
        assert!(matches!(
            inj.scaled_to_rate(&model, 0.5),
            Err(ModelError::InvalidRate(_))
        ));
    }

    #[test]
    fn empirical_rate_matches_expectation() {
        let inj = uniform_generators([path(0)], 0.3).unwrap();
        let mut injector = inj.clone();
        let mut rng = root_rng(99);
        let slots = 20_000;
        let mut count = 0usize;
        for slot in 0..slots {
            count += injector.inject(slot, &mut rng).len();
        }
        let empirical = count as f64 / slots as f64;
        assert!(
            (empirical - 0.3).abs() < 0.02,
            "empirical rate {empirical} far from 0.3"
        );
    }

    #[test]
    fn generator_injects_at_most_one_per_slot() {
        let g = GeneratorSpec::new(vec![(path(0), 0.5), (path(1), 0.5)]).unwrap();
        let mut inj = StochasticInjector::new(vec![g]);
        let mut rng = root_rng(5);
        for slot in 0..1000 {
            assert!(inj.inject(slot, &mut rng).len() <= 1);
        }
    }

    /// An "RNG" whose every `f64` sample is the largest value below one
    /// (`(2⁵³−1)/2⁵³`) — the adversarial draw for cumulative-sum walks.
    fn max_rng() -> rand::rngs::mock::StepRng {
        rand::rngs::mock::StepRng::new(u64::MAX, 0)
    }

    #[test]
    fn certain_generator_always_injects_at_p_one() {
        let g = GeneratorSpec::bernoulli(path(0), 1.0).unwrap();
        assert_eq!(g.total_probability(), 1.0);
        let mut rng = max_rng();
        for _ in 0..100 {
            assert!(g.sample(&mut rng).is_some(), "p=1 generator skipped a slot");
        }
        let mut rng = root_rng(3);
        for _ in 0..1000 {
            assert!(g.sample(&mut rng).is_some());
        }
    }

    #[test]
    fn certain_generator_split_across_tiny_choices_always_injects() {
        // Ten 0.1s accumulate to 1 − 2⁻⁵³, one ulp below the exact sum;
        // the adversarial draw u = 1 − 2⁻⁵³ used to land in the rounding
        // gap and silently return `None`. The stored total snaps to 1.
        let choices: Vec<_> = (0..10).map(|l| (path(l), 0.1)).collect();
        let g = GeneratorSpec::new(choices).unwrap();
        assert_eq!(g.total_probability(), 1.0, "total must snap to one");
        let mut rng = max_rng();
        for _ in 0..100 {
            assert!(
                g.sample(&mut rng).is_some(),
                "generator with total probability 1 failed to inject"
            );
        }
    }

    #[test]
    fn rounding_residue_never_picks_a_zero_probability_route() {
        // Ten 0.1s accumulate an ulp short of one (total snaps to 1),
        // and the trailing route is explicitly disabled (p = 0): the
        // adversarial draw u = 1 − 2⁻⁵³ falls through the whole CDF
        // walk, and the fallback must skip the disabled route.
        let mut choices: Vec<_> = (0..10).map(|l| (path(l), 0.1)).collect();
        choices.push((path(99), 0.0));
        let g = GeneratorSpec::new(choices).unwrap();
        let mut rng = max_rng();
        for _ in 0..100 {
            let route = g.sample(&mut rng).expect("certain generator injects");
            assert_ne!(
                route.hop(0).unwrap(),
                LinkId(99),
                "zero-probability route was injected"
            );
        }
    }

    #[test]
    fn sub_certain_generator_is_not_promoted_to_certainty() {
        // 1 − 1e-10 is a legitimate sub-certain spec (one idle slot per
        // ~10¹⁰), far outside accumulation-rounding territory: the snap
        // must leave it alone.
        let g = GeneratorSpec::bernoulli(path(0), 1.0 - 1e-10).unwrap();
        assert!(
            g.total_probability() < 1.0,
            "sub-certain probability was snapped to certainty"
        );
    }

    #[test]
    fn conditional_sampling_never_fails_for_positive_generators() {
        let choices: Vec<_> = (0..10).map(|l| (path(l), 0.07)).collect();
        let g = GeneratorSpec::new(choices).unwrap();
        let mut rng = max_rng();
        for _ in 0..100 {
            assert!(g.sample_conditional(&mut rng).is_some());
        }
        let empty = GeneratorSpec::new(vec![]).unwrap();
        assert!(empty.sample_conditional(&mut root_rng(1)).is_none());
        let zero = GeneratorSpec::bernoulli(path(0), 0.0).unwrap();
        assert!(zero.sample_conditional(&mut root_rng(1)).is_none());
    }

    /// The index and route entry points must consume identical RNG
    /// draws and agree on every pick — the route-id injection lane
    /// swaps one for the other mid-simulation.
    #[test]
    fn conditional_index_matches_conditional_route_stream() {
        let choices: Vec<_> = (0..5).map(|l| (path(l), 0.1)).collect();
        let g = GeneratorSpec::new(choices).unwrap();
        let mut rng_a = root_rng(23);
        let mut rng_b = root_rng(23);
        for _ in 0..2000 {
            let by_route = g.sample_conditional(&mut rng_a).unwrap();
            let by_index = g.sample_conditional_index(&mut rng_b).unwrap();
            assert!(Arc::ptr_eq(&by_route, &g.choices()[by_index].0));
        }
        // Single-choice generators consume no draw on either entry point.
        let single = GeneratorSpec::bernoulli(path(0), 0.5).unwrap();
        assert_eq!(single.sample_conditional_index(&mut root_rng(1)), Some(0));
    }

    #[test]
    fn scaling_to_exactly_feasible_target_is_accepted() {
        // Ten generators at p = 0.1 under complete interference measure
        // 0.9999999999999999 (ten 0.1s, accumulated); scaling to the
        // exactly-feasible target 10 needs every probability at exactly
        // one, but the factor 10/0.999… pushes `p·factor` an ulp above
        // it — the clamp must accept instead of rejecting.
        let routes: Vec<_> = (0..10).map(path).collect();
        let inj = uniform_generators(routes, 0.1).unwrap();
        let model = CompleteInterference::new(10);
        assert!(inj.rate(&model) < 1.0, "premise: accumulated rate < 1");
        let scaled = inj
            .scaled_to_rate(&model, 10.0)
            .expect("exactly-feasible target must not be rejected by rounding");
        assert!((scaled.rate(&model) - 10.0).abs() < 1e-9);
        for g in scaled.generators() {
            assert_eq!(g.total_probability(), 1.0);
        }
    }

    #[test]
    fn inject_into_matches_inject_streams() {
        let routes: Vec<_> = (0..4).map(path).collect();
        let mut a = uniform_generators(routes.clone(), 0.4).unwrap();
        let mut b = a.clone();
        let mut rng_a = root_rng(17);
        let mut rng_b = root_rng(17);
        let mut buf = Vec::new();
        for slot in 0..500 {
            let direct = a.inject(slot, &mut rng_a);
            b.inject_into(slot, &mut rng_b, &mut buf);
            assert_eq!(direct.len(), buf.len());
            for (x, y) in direct.iter().zip(&buf) {
                assert!(Arc::ptr_eq(x, y));
            }
        }
    }

    #[test]
    fn mixture_generator_samples_each_choice() {
        let g = GeneratorSpec::new(vec![(path(0), 0.4), (path(1), 0.4)]).unwrap();
        let mut inj = StochasticInjector::new(vec![g]);
        let mut rng = root_rng(11);
        let mut seen = [0usize; 2];
        for slot in 0..5000 {
            for p in inj.inject(slot, &mut rng) {
                seen[p.hop(0).unwrap().index()] += 1;
            }
        }
        assert!(seen[0] > 1500 && seen[1] > 1500, "seen {seen:?}");
    }
}
