//! Time-independent, finite-user stochastic injection (Section 2.1).
//!
//! A finite set of *generators* each injects at most one packet per slot.
//! The distribution is identical in every slot and independent across
//! generators and slots — exactly the three properties (a), (b), (c) the
//! paper requires. The injection rate is `λ = ‖W·F‖∞` where
//! `F(e) = Σ_g Σ_{P ∋ e} E[X_{g,P}]` counts the expected number of packets
//! per slot whose route uses `e` (with multiplicity).

use crate::error::ModelError;
use crate::injection::Injector;
use crate::interference::InterferenceModel;
use crate::load::LinkLoad;
use crate::path::RoutePath;
use rand::{Rng, RngCore};
use std::sync::Arc;

/// One packet generator: a distribution over routes, injecting at most one
/// packet per slot.
#[derive(Clone, Debug)]
pub struct GeneratorSpec {
    choices: Vec<(Arc<RoutePath>, f64)>,
    total: f64,
}

impl GeneratorSpec {
    /// Creates a generator from `(route, probability)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if any probability is
    /// outside `[0, 1]` or the probabilities sum to more than one (a
    /// generator injects at most one packet per slot).
    pub fn new(choices: Vec<(Arc<RoutePath>, f64)>) -> Result<Self, ModelError> {
        let mut total = 0.0;
        for (_, p) in &choices {
            if !(0.0..=1.0).contains(p) || !p.is_finite() {
                return Err(ModelError::InvalidProbability(*p));
            }
            total += p;
        }
        if total > 1.0 + 1e-9 {
            return Err(ModelError::InvalidProbability(total));
        }
        Ok(GeneratorSpec { choices, total })
    }

    /// A generator injecting a single fixed route with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if `p ∉ [0, 1]`.
    pub fn bernoulli(route: Arc<RoutePath>, p: f64) -> Result<Self, ModelError> {
        GeneratorSpec::new(vec![(route, p)])
    }

    /// Total per-slot injection probability of this generator.
    pub fn total_probability(&self) -> f64 {
        self.total
    }

    /// The `(route, probability)` choices of this generator.
    pub fn choices(&self) -> &[(Arc<RoutePath>, f64)] {
        &self.choices
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<Arc<RoutePath>> {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (path, p) in &self.choices {
            acc += p;
            if u < acc {
                return Some(path.clone());
            }
        }
        None
    }

    fn accumulate_expected_load(&self, load: &mut LinkLoad) {
        for (path, p) in &self.choices {
            for &link in path.links() {
                load.add(link, *p);
            }
        }
    }
}

/// The stochastic injection model: a finite set of independent
/// [`GeneratorSpec`]s queried once per slot.
///
/// ```
/// use dps_core::prelude::*;
/// use dps_core::rng::root_rng;
///
/// let route = RoutePath::single_hop(LinkId(0)).shared();
/// let gen = GeneratorSpec::bernoulli(route, 0.25)?;
/// let injector = StochasticInjector::new(vec![gen]);
/// let model = IdentityInterference::new(1);
/// assert!((injector.rate(&model) - 0.25).abs() < 1e-12);
/// # Ok::<(), dps_core::error::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct StochasticInjector {
    generators: Vec<GeneratorSpec>,
}

impl StochasticInjector {
    /// Creates the injector from its generators.
    pub fn new(generators: Vec<GeneratorSpec>) -> Self {
        StochasticInjector { generators }
    }

    /// The generators.
    pub fn generators(&self) -> &[GeneratorSpec] {
        &self.generators
    }

    /// Expected per-slot load vector `F`.
    pub fn expected_load(&self, num_links: usize) -> LinkLoad {
        let mut load = LinkLoad::new(num_links);
        for g in &self.generators {
            g.accumulate_expected_load(&mut load);
        }
        load
    }

    /// The injection rate `λ = ‖W·F‖∞` under `model`.
    pub fn rate<M: InterferenceModel + ?Sized>(&self, model: &M) -> f64 {
        model.measure(&self.expected_load(model.num_links()))
    }

    /// Returns a copy whose rate under `model` equals `target_rate`, by
    /// scaling every probability proportionally.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if the current rate is zero or
    /// `target_rate` is not a positive finite number, and
    /// [`ModelError::InvalidProbability`] if scaling would push a
    /// generator's total probability above one.
    pub fn scaled_to_rate<M: InterferenceModel + ?Sized>(
        &self,
        model: &M,
        target_rate: f64,
    ) -> Result<Self, ModelError> {
        if !(target_rate > 0.0 && target_rate.is_finite()) {
            return Err(ModelError::InvalidRate(target_rate));
        }
        let current = self.rate(model);
        if current <= 0.0 {
            return Err(ModelError::InvalidRate(current));
        }
        let factor = target_rate / current;
        let generators = self
            .generators
            .iter()
            .map(|g| {
                GeneratorSpec::new(
                    g.choices
                        .iter()
                        .map(|(path, p)| (path.clone(), p * factor))
                        .collect(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StochasticInjector { generators })
    }
}

impl Injector for StochasticInjector {
    fn inject(&mut self, _slot: u64, rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        self.generators
            .iter()
            .filter_map(|g| g.sample(rng))
            .collect()
    }
}

/// Builds one Bernoulli generator per given route, each injecting with
/// probability `p` — the standard symmetric workload of the experiments.
///
/// # Errors
///
/// Returns [`ModelError::InvalidProbability`] if `p ∉ [0, 1]`.
pub fn uniform_generators(
    routes: impl IntoIterator<Item = Arc<RoutePath>>,
    p: f64,
) -> Result<StochasticInjector, ModelError> {
    let generators = routes
        .into_iter()
        .map(|r| GeneratorSpec::bernoulli(r, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StochasticInjector::new(generators))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::interference::{CompleteInterference, IdentityInterference};
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    fn two_hop(a: u32, b: u32) -> Arc<RoutePath> {
        RoutePath::from_links_unchecked(vec![LinkId(a), LinkId(b)]).shared()
    }

    #[test]
    fn generator_rejects_excess_probability() {
        let err = GeneratorSpec::new(vec![(path(0), 0.7), (path(1), 0.6)]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidProbability(_)));
    }

    #[test]
    fn generator_rejects_negative_probability() {
        let err = GeneratorSpec::new(vec![(path(0), -0.1)]).unwrap_err();
        assert_eq!(err, ModelError::InvalidProbability(-0.1));
    }

    #[test]
    fn expected_load_counts_path_multiplicity() {
        let g1 = GeneratorSpec::bernoulli(two_hop(0, 1), 0.5).unwrap();
        let g2 = GeneratorSpec::bernoulli(path(1), 0.25).unwrap();
        let inj = StochasticInjector::new(vec![g1, g2]);
        let f = inj.expected_load(2);
        assert!((f.get(LinkId(0)) - 0.5).abs() < 1e-12);
        assert!((f.get(LinkId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rate_depends_on_model() {
        let inj = uniform_generators([path(0), path(1)], 0.3).unwrap();
        let identity = IdentityInterference::new(2);
        let complete = CompleteInterference::new(2);
        assert!((inj.rate(&identity) - 0.3).abs() < 1e-12);
        assert!((inj.rate(&complete) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_target_rate() {
        let inj = uniform_generators([path(0), path(1)], 0.1).unwrap();
        let model = CompleteInterference::new(2);
        let scaled = inj.scaled_to_rate(&model, 0.5).unwrap();
        assert!((scaled.rate(&model) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_rejects_infeasible_target() {
        let inj = uniform_generators([path(0)], 0.5).unwrap();
        let model = IdentityInterference::new(1);
        // Scaling to rate 3 would need probability 3 > 1.
        let err = inj.scaled_to_rate(&model, 3.0).unwrap_err();
        assert!(matches!(err, ModelError::InvalidProbability(_)));
    }

    #[test]
    fn scaling_rejects_zero_base_rate() {
        let inj = StochasticInjector::new(vec![]);
        let model = IdentityInterference::new(1);
        assert!(matches!(
            inj.scaled_to_rate(&model, 0.5),
            Err(ModelError::InvalidRate(_))
        ));
    }

    #[test]
    fn empirical_rate_matches_expectation() {
        let inj = uniform_generators([path(0)], 0.3).unwrap();
        let mut injector = inj.clone();
        let mut rng = root_rng(99);
        let slots = 20_000;
        let mut count = 0usize;
        for slot in 0..slots {
            count += injector.inject(slot, &mut rng).len();
        }
        let empirical = count as f64 / slots as f64;
        assert!(
            (empirical - 0.3).abs() < 0.02,
            "empirical rate {empirical} far from 0.3"
        );
    }

    #[test]
    fn generator_injects_at_most_one_per_slot() {
        let g = GeneratorSpec::new(vec![(path(0), 0.5), (path(1), 0.5)]).unwrap();
        let mut inj = StochasticInjector::new(vec![g]);
        let mut rng = root_rng(5);
        for slot in 0..1000 {
            assert!(inj.inject(slot, &mut rng).len() <= 1);
        }
    }

    #[test]
    fn mixture_generator_samples_each_choice() {
        let g = GeneratorSpec::new(vec![(path(0), 0.4), (path(1), 0.4)]).unwrap();
        let mut inj = StochasticInjector::new(vec![g]);
        let mut rng = root_rng(11);
        let mut seen = [0usize; 2];
        for slot in 0..5000 {
            for p in inj.inject(slot, &mut rng) {
                seen[p.hop(0).unwrap().index()] += 1;
            }
        }
        assert!(seen[0] > 1500 && seen[1] > 1500, "seen {seen:?}");
    }
}
