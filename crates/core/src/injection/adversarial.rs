//! `(w, λ)`-bounded window adversaries (Section 2.1).
//!
//! The adversary may inject any packets it likes as long as, for every
//! interval of `w` consecutive slots, the interference measure of all routes
//! injected in that interval is at most `λ·w`. The adversaries here enforce
//! that bound *by construction* through a sliding [`WindowBudget`], so any
//! pacing heuristic stays admissible; the [`WindowValidator`] independently
//! checks traces (its own and recorded ones) and reports the effective rate.
//!
//! Four temporal patterns are provided, covering the stress shapes used in
//! experiment E5:
//!
//! * [`SmoothAdversary`] — credit-based, spreads injections evenly;
//! * [`BurstyAdversary`] — dumps the whole window budget at window starts;
//! * [`SingleEdgeAdversary`] — floods one route continuously (maximum
//!   concentration on one link);
//! * [`RoundRobinAdversary`] — strict periodic rotation over the templates.

use crate::injection::Injector;
use crate::interference::InterferenceModel;
use crate::load::LinkLoad;
use crate::path::RoutePath;
use rand::RngCore;
use std::collections::VecDeque;
use std::sync::Arc;

/// Numerical slack when comparing measures against the window budget, so
/// float rounding never rejects an exactly-full window.
const BUDGET_EPS: f64 = 1e-9;

/// Sliding-window accounting of injected interference measure.
///
/// Tracks the per-slot injected loads of the last `w` slots; an injection is
/// *admissible* if the window ending at the current slot stays within
/// `λ·w`. Checking every window as it completes is sufficient: every
/// interval of `w` slots is the window ending at its last slot.
#[derive(Clone, Debug)]
pub struct WindowBudget {
    w: usize,
    budget: f64,
    window: VecDeque<LinkLoad>,
    sum: LinkLoad,
}

impl WindowBudget {
    /// Creates a budget for window length `w` and rate `lambda` over
    /// `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `lambda` is negative or non-finite.
    pub fn new(num_links: usize, w: usize, lambda: f64) -> Self {
        assert!(w > 0, "window length must be positive");
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "rate must be a non-negative finite number, got {lambda}"
        );
        let mut window = VecDeque::with_capacity(w);
        window.push_back(LinkLoad::new(num_links));
        WindowBudget {
            w,
            budget: lambda * w as f64,
            window,
            sum: LinkLoad::new(num_links),
        }
    }

    /// The window length `w`.
    pub fn window_len(&self) -> usize {
        self.w
    }

    /// The per-window measure budget `λ·w`.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Whether adding `route` in the current slot keeps the window within
    /// budget under `model`.
    pub fn admissible<M: InterferenceModel + ?Sized>(&self, model: &M, route: &RoutePath) -> bool {
        let mut with = self.sum.clone();
        for &link in route.links() {
            with.add(link, 1.0);
        }
        model.measure(&with) <= self.budget + BUDGET_EPS
    }

    /// Records an injection of `route` in the current slot.
    pub fn commit(&mut self, route: &RoutePath) {
        let current = self.window.back_mut().expect("window never empty");
        for &link in route.links() {
            current.add(link, 1.0);
            self.sum.add(link, 1.0);
        }
    }

    /// Moves to the next slot, expiring the oldest slot once the window is
    /// full.
    pub fn advance_slot(&mut self) {
        if self.window.len() == self.w {
            let expired = self.window.pop_front().expect("window full");
            for (link, count) in expired.support() {
                self.sum.add(link, -count);
            }
        }
        self.window.push_back(LinkLoad::new(self.sum.num_links()));
    }

    /// Measure of the current window's accumulated load under `model`.
    pub fn current_measure<M: InterferenceModel + ?Sized>(&self, model: &M) -> f64 {
        model.measure(&self.sum)
    }
}

/// Validates that a trace of per-slot injections is `(w, λ)`-bounded and
/// reports the largest window measure observed.
///
/// Used by tests (every adversary must validate) and to measure the
/// *effective* rate an adversary achieved, which experiments report next to
/// the target rate.
#[derive(Clone, Debug)]
pub struct WindowValidator<M> {
    model: M,
    w: usize,
    window: VecDeque<LinkLoad>,
    sum: LinkLoad,
    max_window_measure: f64,
    slots: u64,
    total_injected: usize,
}

impl<M: InterferenceModel> WindowValidator<M> {
    /// Creates a validator for window length `w` under `model`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(model: M, w: usize) -> Self {
        assert!(w > 0, "window length must be positive");
        let num_links = model.num_links();
        WindowValidator {
            model,
            w,
            window: VecDeque::with_capacity(w),
            sum: LinkLoad::new(num_links),
            max_window_measure: 0.0,
            slots: 0,
            total_injected: 0,
        }
    }

    /// Records the routes injected in the next slot.
    pub fn record_slot<'a, I>(&mut self, routes: I)
    where
        I: IntoIterator<Item = &'a RoutePath>,
    {
        if self.window.len() == self.w {
            let expired = self.window.pop_front().expect("window full");
            for (link, count) in expired.support() {
                self.sum.add(link, -count);
            }
        }
        let mut slot_load = LinkLoad::new(self.sum.num_links());
        for route in routes {
            self.total_injected += 1;
            for &link in route.links() {
                slot_load.add(link, 1.0);
                self.sum.add(link, 1.0);
            }
        }
        self.window.push_back(slot_load);
        self.slots += 1;
        let measure = self.model.measure(&self.sum);
        if measure > self.max_window_measure {
            self.max_window_measure = measure;
        }
    }

    /// The largest measure any window of `w` slots accumulated.
    pub fn max_window_measure(&self) -> f64 {
        self.max_window_measure
    }

    /// The effective rate `max_window_measure / w`: the smallest `λ` for
    /// which the recorded trace is `(w, λ)`-bounded.
    pub fn effective_rate(&self) -> f64 {
        self.max_window_measure / self.w as f64
    }

    /// Whether the trace observed so far is `(w, λ)`-bounded.
    pub fn is_bounded(&self, lambda: f64) -> bool {
        self.max_window_measure <= lambda * self.w as f64 + BUDGET_EPS
    }

    /// Total packets recorded.
    pub fn total_injected(&self) -> usize {
        self.total_injected
    }

    /// Slots recorded.
    pub fn slots(&self) -> u64 {
        self.slots
    }
}

/// Shared plumbing of the concrete adversaries: the interference model, the
/// route templates, and the budget enforcement.
#[derive(Clone, Debug)]
struct AdversaryCore<M> {
    model: M,
    templates: Vec<Arc<RoutePath>>,
    budget: WindowBudget,
    last_slot: Option<u64>,
}

impl<M: InterferenceModel> AdversaryCore<M> {
    fn new(model: M, templates: Vec<Arc<RoutePath>>, w: usize, lambda: f64) -> Self {
        assert!(
            !templates.is_empty(),
            "adversary needs at least one route template"
        );
        let num_links = model.num_links();
        AdversaryCore {
            model,
            templates,
            budget: WindowBudget::new(num_links, w, lambda),
            last_slot: None,
        }
    }

    /// Advances the sliding window to `slot` (handles skipped slots).
    fn sync_to(&mut self, slot: u64) {
        match self.last_slot {
            None => {}
            Some(prev) => {
                assert!(
                    slot > prev,
                    "injector driven with non-increasing slot {slot}"
                );
                for _ in 0..(slot - prev) {
                    self.budget.advance_slot();
                }
            }
        }
        self.last_slot = Some(slot);
    }

    fn try_inject(&mut self, template_idx: usize, out: &mut Vec<Arc<RoutePath>>) -> bool {
        let template = &self.templates[template_idx];
        if self.budget.admissible(&self.model, template) {
            self.budget.commit(template);
            out.push(template.clone());
            true
        } else {
            false
        }
    }

    /// Standalone measure of a template, an upper bound on its marginal
    /// window-measure cost; used for pacing.
    fn template_cost(&self, idx: usize) -> f64 {
        let load = LinkLoad::from_paths(self.model.num_links(), [self.templates[idx].as_ref()]);
        self.model.measure(&load).max(BUDGET_EPS)
    }
}

/// Spreads injections evenly over time, one credit counter per template.
///
/// Template `i` accumulates `λ/cost_i` credit per slot (its standalone
/// measure `cost_i` is an upper bound on its marginal contribution) and
/// injects whenever a full credit is available and the window budget
/// admits it. On substrates where the measure is per-link (identity-like
/// `W`) every template sustains rate `λ` concurrently; on substrates
/// where templates share budget (all-ones `W`) the admissibility check
/// throttles them to a joint rate `λ`. Either way the *effective* rate
/// approaches the target and the `(w, λ)` bound holds by construction.
#[derive(Clone, Debug)]
pub struct SmoothAdversary<M> {
    core: AdversaryCore<M>,
    credits: Vec<f64>,
    lambda: f64,
}

impl<M: InterferenceModel> SmoothAdversary<M> {
    /// Creates the adversary over the given templates, targeting rate
    /// `lambda` with window length `w`.
    pub fn new(model: M, templates: Vec<Arc<RoutePath>>, w: usize, lambda: f64) -> Self {
        let credits = vec![0.0; templates.len()];
        SmoothAdversary {
            core: AdversaryCore::new(model, templates, w, lambda),
            credits,
            lambda,
        }
    }
}

impl<M: InterferenceModel> Injector for SmoothAdversary<M> {
    fn inject(&mut self, slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        self.core.sync_to(slot);
        let mut out = Vec::new();
        for idx in 0..self.core.templates.len() {
            let cost = self.core.template_cost(idx);
            // Cap the accumulated credit so budget-rejected slots do not
            // bank up into a later burst (this adversary is the smooth one).
            self.credits[idx] = (self.credits[idx] + self.lambda / cost).min(2.0);
            while self.credits[idx] >= 1.0 {
                if self.core.try_inject(idx, &mut out) {
                    self.credits[idx] -= 1.0;
                } else {
                    break;
                }
            }
        }
        out
    }
}

/// Dumps as much of the window budget as fits at the first slot of every
/// window, then stays silent.
#[derive(Clone, Debug)]
pub struct BurstyAdversary<M> {
    core: AdversaryCore<M>,
    w: usize,
    cursor: usize,
}

impl<M: InterferenceModel> BurstyAdversary<M> {
    /// Creates the adversary over the given templates, targeting rate
    /// `lambda` with window length `w`.
    pub fn new(model: M, templates: Vec<Arc<RoutePath>>, w: usize, lambda: f64) -> Self {
        BurstyAdversary {
            core: AdversaryCore::new(model, templates, w, lambda),
            w,
            cursor: 0,
        }
    }
}

impl<M: InterferenceModel> Injector for BurstyAdversary<M> {
    fn inject(&mut self, slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        self.core.sync_to(slot);
        let mut out = Vec::new();
        if slot.is_multiple_of(self.w as u64) {
            let k = self.core.templates.len();
            let mut misses = 0;
            while misses < k {
                let idx = self.cursor % k;
                if self.core.try_inject(idx, &mut out) {
                    self.cursor += 1;
                    misses = 0;
                } else {
                    self.cursor += 1;
                    misses += 1;
                }
            }
        }
        out
    }
}

/// Floods a single route every slot, injecting as many copies as the window
/// budget admits — the maximum sustained concentration on one link.
#[derive(Clone, Debug)]
pub struct SingleEdgeAdversary<M> {
    core: AdversaryCore<M>,
}

impl<M: InterferenceModel> SingleEdgeAdversary<M> {
    /// Creates the adversary flooding `route` at rate `lambda` with window
    /// length `w`.
    pub fn new(model: M, route: Arc<RoutePath>, w: usize, lambda: f64) -> Self {
        SingleEdgeAdversary {
            core: AdversaryCore::new(model, vec![route], w, lambda),
        }
    }
}

impl<M: InterferenceModel> Injector for SingleEdgeAdversary<M> {
    fn inject(&mut self, slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        self.core.sync_to(slot);
        let mut out = Vec::new();
        while self.core.try_inject(0, &mut out) {}
        out
    }
}

/// Injects templates on a strict deterministic cadence: template `i`
/// fires at every slot with `(slot + i) ≡ 0 (mod ⌈cost_i/λ⌉)`, staggered
/// by index so the templates do not align. No randomness, no credit
/// banking — the fully periodic injection pattern of the classic
/// adversarial-queuing constructions, throttled by the window budget.
///
/// The cadence fires each template at most once per slot, so for
/// `λ > cost_i` the effective per-template rate saturates at one packet
/// per slot — unlike [`SingleEdgeAdversary`], which injects multiple
/// copies per slot to reach super-unit rates.
#[derive(Clone, Debug)]
pub struct RoundRobinAdversary<M> {
    core: AdversaryCore<M>,
    periods: Vec<u64>,
}

impl<M: InterferenceModel> RoundRobinAdversary<M> {
    /// Creates the adversary over the given templates, targeting rate
    /// `lambda` with window length `w`.
    pub fn new(model: M, templates: Vec<Arc<RoutePath>>, w: usize, lambda: f64) -> Self {
        let core = AdversaryCore::new(model, templates, w, lambda);
        let periods = (0..core.templates.len())
            .map(|i| {
                if lambda <= 0.0 {
                    u64::MAX
                } else {
                    (core.template_cost(i) / lambda).ceil().max(1.0) as u64
                }
            })
            .collect();
        RoundRobinAdversary { core, periods }
    }
}

impl<M: InterferenceModel> Injector for RoundRobinAdversary<M> {
    fn inject(&mut self, slot: u64, _rng: &mut dyn RngCore) -> Vec<Arc<RoutePath>> {
        self.core.sync_to(slot);
        let mut out = Vec::new();
        for idx in 0..self.core.templates.len() {
            let period = self.periods[idx];
            if period != u64::MAX && (slot + idx as u64).is_multiple_of(period) {
                self.core.try_inject(idx, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LinkId;
    use crate::interference::{CompleteInterference, IdentityInterference};
    use crate::rng::root_rng;

    fn path(link: u32) -> Arc<RoutePath> {
        RoutePath::single_hop(LinkId(link)).shared()
    }

    fn run_and_validate<I: Injector, M: InterferenceModel + Clone>(
        injector: &mut I,
        model: &M,
        w: usize,
        slots: u64,
    ) -> WindowValidator<M> {
        let mut rng = root_rng(3);
        let mut validator = WindowValidator::new(model.clone(), w);
        for slot in 0..slots {
            let injected = injector.inject(slot, &mut rng);
            validator.record_slot(injected.iter().map(|p| p.as_ref()));
        }
        validator
    }

    #[test]
    fn budget_rejects_overfull_window() {
        let model = IdentityInterference::new(1);
        let mut budget = WindowBudget::new(1, 4, 0.5); // budget 2 per window
        let route = RoutePath::single_hop(LinkId(0));
        assert!(budget.admissible(&model, &route));
        budget.commit(&route);
        assert!(budget.admissible(&model, &route));
        budget.commit(&route);
        assert!(!budget.admissible(&model, &route));
    }

    #[test]
    fn budget_frees_capacity_as_window_slides() {
        let model = IdentityInterference::new(1);
        let mut budget = WindowBudget::new(1, 2, 0.5); // budget 1 per window
        let route = RoutePath::single_hop(LinkId(0));
        budget.commit(&route);
        assert!(!budget.admissible(&model, &route));
        budget.advance_slot();
        assert!(
            !budget.admissible(&model, &route),
            "window of 2 still holds the packet"
        );
        budget.advance_slot();
        assert!(budget.admissible(&model, &route), "old slot expired");
    }

    #[test]
    fn smooth_adversary_is_bounded_and_near_target() {
        let model = CompleteInterference::new(4);
        let templates: Vec<_> = (0..4).map(path).collect();
        let lambda = 0.5;
        let w = 20;
        let mut adv = SmoothAdversary::new(model, templates, w, lambda);
        let v = run_and_validate(&mut adv, &model, w, 2000);
        assert!(
            v.is_bounded(lambda),
            "effective rate {}",
            v.effective_rate()
        );
        assert!(
            v.effective_rate() > 0.35 * lambda,
            "smooth adversary too timid: {}",
            v.effective_rate()
        );
    }

    #[test]
    fn bursty_adversary_is_bounded_and_bursts() {
        let model = CompleteInterference::new(2);
        let templates: Vec<_> = (0..2).map(path).collect();
        let lambda = 0.4;
        let w = 10;
        let mut adv = BurstyAdversary::new(model, templates.clone(), w, lambda);
        let mut rng = root_rng(1);
        let first = adv.inject(0, &mut rng);
        assert_eq!(first.len(), 4, "burst should fill the whole budget λw = 4");
        for slot in 1..w as u64 {
            assert!(adv.inject(slot, &mut rng).is_empty());
        }
        let mut adv = BurstyAdversary::new(model, templates, w, lambda);
        let v = run_and_validate(&mut adv, &model, w, 500);
        assert!(v.is_bounded(lambda));
    }

    #[test]
    fn single_edge_adversary_saturates_budget() {
        let model = IdentityInterference::new(3);
        let lambda = 1.0;
        let w = 8;
        let mut adv = SingleEdgeAdversary::new(model, path(1), w, lambda);
        let v = run_and_validate(&mut adv, &model, w, 400);
        assert!(v.is_bounded(lambda));
        assert!(
            (v.effective_rate() - lambda).abs() < 0.2,
            "flooding should nearly saturate: {}",
            v.effective_rate()
        );
    }

    #[test]
    fn round_robin_adversary_is_bounded_and_deterministic() {
        let model = CompleteInterference::new(3);
        let lambda = 0.25;
        let w = 16;
        // Deterministic: two instances produce identical patterns.
        let run_pattern = || {
            let mut adv = RoundRobinAdversary::new(model, (0..3).map(path).collect(), w, lambda);
            let mut rng = root_rng(2);
            (0..64u64)
                .map(|s| adv.inject(s, &mut rng).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run_pattern(), run_pattern());
        // Template i fires at (slot + i) % 4 == 0 subject to the budget:
        // the very first slot carries exactly one injection (template 0).
        assert_eq!(run_pattern()[0], 1);
        let mut adv = RoundRobinAdversary::new(model, (0..3).map(path).collect(), w, lambda);
        let v = run_and_validate(&mut adv, &model, w, 800);
        assert!(v.is_bounded(lambda));
        // The budget throttles the over-eager cadence down to ~lambda.
        assert!(
            v.effective_rate() > 0.6 * lambda,
            "round-robin too timid: {}",
            v.effective_rate()
        );
    }

    #[test]
    fn smooth_adversary_saturates_per_link_budget_on_identity() {
        // On identity W the measure is per-link congestion: every template
        // can sustain rate lambda concurrently, and the effective rate
        // (max per-link) should approach lambda itself.
        let model = IdentityInterference::new(4);
        let templates: Vec<_> = (0..4).map(path).collect();
        let lambda = 0.5;
        let w = 32;
        let mut adv = SmoothAdversary::new(model, templates, w, lambda);
        let v = run_and_validate(&mut adv, &model, w, 2000);
        assert!(v.is_bounded(lambda));
        assert!(
            v.effective_rate() > 0.8 * lambda,
            "smooth adversary must saturate per-link budgets: {}",
            v.effective_rate()
        );
        // Total injected ≈ 4 links · lambda · slots.
        assert!(v.total_injected() as f64 > 0.7 * 4.0 * lambda * 2000.0);
    }

    #[test]
    fn validator_flags_unbounded_trace() {
        let model = CompleteInterference::new(1);
        let mut v = WindowValidator::new(model, 4);
        let p = RoutePath::single_hop(LinkId(0));
        // 3 packets in one slot => window measure 3 > λw = 0.5*4 = 2.
        v.record_slot([&p, &p, &p]);
        assert!(!v.is_bounded(0.5));
        assert!(v.is_bounded(0.75));
        assert_eq!(v.total_injected(), 3);
        assert_eq!(v.max_window_measure(), 3.0);
    }

    #[test]
    fn validator_window_slides() {
        let model = CompleteInterference::new(1);
        let mut v = WindowValidator::new(model, 2);
        let p = RoutePath::single_hop(LinkId(0));
        v.record_slot([&p]);
        v.record_slot([&p]);
        v.record_slot([] as [&RoutePath; 0]);
        v.record_slot([] as [&RoutePath; 0]);
        // Peak window held 2 packets; later windows are empty.
        assert_eq!(v.max_window_measure(), 2.0);
        assert_eq!(v.slots(), 4);
    }

    #[test]
    #[should_panic(expected = "non-increasing slot")]
    fn adversary_rejects_time_going_backwards() {
        let model = IdentityInterference::new(1);
        let mut adv = SingleEdgeAdversary::new(model, path(0), 4, 0.5);
        let mut rng = root_rng(1);
        adv.inject(5, &mut rng);
        adv.inject(5, &mut rng);
    }

    #[test]
    fn zero_rate_adversary_injects_nothing() {
        let model = IdentityInterference::new(1);
        let mut adv = SmoothAdversary::new(model, vec![path(0)], 4, 0.0);
        let v = run_and_validate(&mut adv, &model, 4, 100);
        assert_eq!(v.total_injected(), 0);
    }
}
