//! The slot-level interface every dynamic protocol implements.
//!
//! A protocol is driven one slot at a time: it receives the packets
//! injected in that slot, may issue transmission attempts against the
//! physical layer (a [`crate::feasibility::Feasibility`] oracle), and
//! reports deliveries. The frame protocol of Section 4 implements this, and
//! so do the custom protocols of the lower-bound experiment (Section 8).

use crate::feasibility::Feasibility;
use crate::packet::{DeliveredPacket, Packet};
use rand::RngCore;

/// What happened during one slot of a protocol run.
#[derive(Clone, Debug, Default)]
pub struct SlotOutcome {
    /// Packets that reached their final destination this slot.
    pub delivered: Vec<DeliveredPacket>,
    /// Transmission attempts issued this slot.
    pub attempts: usize,
    /// Attempts that succeeded this slot.
    pub successes: usize,
}

impl SlotOutcome {
    /// An outcome with no activity.
    pub fn empty() -> Self {
        SlotOutcome::default()
    }
}

/// A dynamic packet-scheduling protocol, driven slot by slot.
pub trait Protocol {
    /// Advances the protocol by one slot.
    ///
    /// `arrivals` are the packets injected in this slot (already stamped
    /// with their injection time); `phy` decides which of the protocol's
    /// transmission attempts succeed. Implementations must be driven with
    /// consecutive slot numbers starting at 0.
    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome;

    /// Number of packets currently in the system (injected, not yet
    /// delivered).
    fn backlog(&self) -> usize;

    /// The potential `Φ`: total remaining hops of all *failed* packets
    /// (Section 4.1). Protocols without a failure notion report zero.
    fn potential(&self) -> u64 {
        0
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome {
        (**self).on_slot(slot, arrivals, phy, rng)
    }

    fn backlog(&self) -> usize {
        (**self).backlog()
    }

    fn potential(&self) -> u64 {
        (**self).potential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_outcome_has_no_activity() {
        let o = SlotOutcome::empty();
        assert!(o.delivered.is_empty());
        assert_eq!(o.attempts, 0);
        assert_eq!(o.successes, 0);
    }
}
