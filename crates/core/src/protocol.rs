//! The slot-level interface every dynamic protocol implements.
//!
//! A protocol is driven one slot at a time: it receives the packets
//! injected in that slot, may issue transmission attempts against the
//! physical layer (a [`crate::feasibility::Feasibility`] oracle), and
//! reports deliveries. The frame protocol of Section 4 implements this, and
//! so do the custom protocols of the lower-bound experiment (Section 8).
//!
//! The driving entry point is [`Protocol::step`]: arrivals are borrowed
//! and the outcome is written into a caller-owned [`SlotOutcome`], so a
//! simulation's slot loop reuses two buffers for its entire run and idle
//! slots allocate nothing. The owned-`Vec` [`Protocol::on_slot`] form is
//! kept as a convenience shim — each method has a default implemented in
//! terms of the other, so implementations override exactly one of them
//! (hot protocols override `step`; overriding neither would recurse).

use crate::feasibility::Feasibility;
use crate::ids::PacketId;
use crate::invariants::InvariantViolation;
use crate::packet::{DeliveredPacket, Packet};
use crate::route_table::{RouteId, RouteTable};
use rand::RngCore;

/// A slot arrival in interned form: the packet's route is a [`RouteId`]
/// against the protocol's own [`RouteTable`] instead of an
/// `Arc<RoutePath>`. The hot arrival lane of
/// [`Protocol::step_interned`] — injectors that pre-intern their routes
/// hand these over without touching any `Arc` reference count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternedArrival {
    /// The packet's identity.
    pub id: PacketId,
    /// The packet's route, interned in the protocol's table.
    pub route: RouteId,
    /// Slot the packet was injected at.
    pub injected_at: u64,
}

/// What happened during one slot of a protocol run.
#[derive(Clone, Debug, Default)]
pub struct SlotOutcome {
    /// Packets that reached their final destination this slot.
    pub delivered: Vec<DeliveredPacket>,
    /// Transmission attempts issued this slot.
    pub attempts: usize,
    /// Attempts that succeeded this slot.
    pub successes: usize,
}

impl SlotOutcome {
    /// An outcome with no activity.
    pub fn empty() -> Self {
        SlotOutcome::default()
    }

    /// Resets the outcome to no activity, retaining the delivered
    /// buffer's capacity — the reuse contract of [`Protocol::step`]:
    /// implementations call this first, so callers can hand the same
    /// outcome to every slot without clearing it between calls.
    pub fn clear(&mut self) {
        self.delivered.clear();
        self.attempts = 0;
        self.successes = 0;
    }
}

/// A dynamic packet-scheduling protocol, driven slot by slot.
///
/// Implementations must override [`Protocol::step`] (preferred; the hot
/// path) or [`Protocol::on_slot`] (legacy shim); each has a default
/// delegating to the other.
pub trait Protocol {
    /// Advances the protocol by one slot, writing what happened into
    /// `out`.
    ///
    /// `arrivals` are the packets injected in this slot (already stamped
    /// with their injection time); `phy` decides which of the protocol's
    /// transmission attempts succeed. Implementations must be driven
    /// with consecutive slot numbers starting at 0.
    ///
    /// `out` is reset via [`SlotOutcome::clear`] before anything is
    /// recorded — callers reuse one outcome across slots and read it
    /// between calls; they never need to clear it themselves.
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        let outcome = self.on_slot(slot, arrivals.to_vec(), phy, rng);
        out.clear();
        out.delivered.extend_from_slice(&outcome.delivered);
        out.attempts = outcome.attempts;
        out.successes = outcome.successes;
    }

    /// Advances the protocol by one slot, returning an owned outcome.
    ///
    /// Semantically identical to [`Protocol::step`] — same decisions,
    /// same RNG consumption — kept for call sites that prefer owned
    /// values over buffer reuse. Callers must drive a protocol through
    /// one entry point per slot, not both.
    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome {
        let mut out = SlotOutcome::empty();
        self.step(slot, &arrivals, phy, rng, &mut out);
        out
    }

    /// Number of packets currently in the system (injected, not yet
    /// delivered).
    fn backlog(&self) -> usize;

    /// The potential `Φ`: total remaining hops of all *failed* packets
    /// (Section 4.1). Protocols without a failure notion report zero.
    fn potential(&self) -> u64 {
        0
    }

    /// Event-engine hint: the earliest slot `> now` at which stepping
    /// this protocol *without arrivals* could do anything observable —
    /// issue an attempt, consume RNG, deliver, or change any reported
    /// statistic. `None` (the conservative default) means "no idea":
    /// the engine then steps every slot.
    ///
    /// Contract for `Some(s)`: given that no packet arrives in
    /// `now+1..s`, every slot in that open range is *inert* — stepping
    /// it would neither consume RNG nor change `backlog()`,
    /// `potential()`, or any outcome. Such slots may be replaced by one
    /// [`skip_idle_slots`](Protocol::skip_idle_slots) call. `s` itself
    /// is only a candidate (false positives allowed); the query must
    /// not consume RNG or mutate state.
    fn next_event_slot(&self, _now: u64) -> Option<u64> {
        None
    }

    /// Advances internal bookkeeping across `count` slots starting at
    /// `from`, all of which the caller knows to be inert (declared so
    /// by [`next_event_slot`](Protocol::next_event_slot) and free of
    /// arrivals). After the call the protocol must be in exactly the
    /// state that `count` empty [`step`](Protocol::step) calls would
    /// have produced, without consuming RNG. The default is a no-op,
    /// correct for stateless-per-slot protocols; frame protocols
    /// override it to advance their frame phase.
    fn skip_idle_slots(&mut self, _from: u64, _count: u64) {}

    /// Verifies the protocol's internal bookkeeping invariants (packet
    /// conservation, the store/free-list partition, potential
    /// accounting — see [`crate::invariants`]).
    ///
    /// Called between slots by the simulation runner when the
    /// `check-invariants` cargo feature is enabled, and by the
    /// exhaustive model checker on every reachable state. Must not
    /// mutate state or consume RNG. The default reports no violation —
    /// correct for protocols without checkable internal structure.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        Ok(())
    }

    /// The protocol's route interner, when it keys packets by
    /// [`RouteId`] internally. Returning `Some` (paired with an
    /// injector whose `Injector::interned_capable` is true) lets the
    /// simulation runner use [`step_interned`](Protocol::step_interned)
    /// and skip the per-packet `Arc` boundary entirely. The default
    /// `None` keeps the classic [`Packet`] lane.
    fn route_interner(&mut self) -> Option<&mut RouteTable> {
        None
    }

    /// Advances the protocol by one slot with pre-interned arrivals.
    ///
    /// Semantically identical to [`step`](Protocol::step) — same
    /// decisions, same RNG consumption, same outcome — given that each
    /// [`InternedArrival`] names the same packets a [`Packet`] slice
    /// would have, with routes interned in *this* protocol's table
    /// (obtained via [`route_interner`](Protocol::route_interner)).
    ///
    /// Only callable when `route_interner` returns `Some`; the default
    /// panics, so callers must gate on that (the simulation runner
    /// does).
    fn step_interned(
        &mut self,
        _slot: u64,
        _arrivals: &[InternedArrival],
        _phy: &dyn Feasibility,
        _rng: &mut dyn RngCore,
        _out: &mut SlotOutcome,
    ) {
        unimplemented!("step_interned requires a protocol exposing route_interner()")
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        (**self).step(slot, arrivals, phy, rng, out)
    }

    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome {
        (**self).on_slot(slot, arrivals, phy, rng)
    }

    fn backlog(&self) -> usize {
        (**self).backlog()
    }

    fn potential(&self) -> u64 {
        (**self).potential()
    }

    fn next_event_slot(&self, now: u64) -> Option<u64> {
        (**self).next_event_slot(now)
    }

    fn skip_idle_slots(&mut self, from: u64, count: u64) {
        (**self).skip_idle_slots(from, count)
    }

    fn route_interner(&mut self) -> Option<&mut RouteTable> {
        (**self).route_interner()
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        (**self).check_invariants()
    }

    fn step_interned(
        &mut self,
        slot: u64,
        arrivals: &[InternedArrival],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        (**self).step_interned(slot, arrivals, phy, rng, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::PerLinkFeasibility;
    use crate::ids::{LinkId, PacketId};
    use crate::path::RoutePath;
    use crate::rng::root_rng;

    #[test]
    fn empty_outcome_has_no_activity() {
        let o = SlotOutcome::empty();
        assert!(o.delivered.is_empty());
        assert_eq!(o.attempts, 0);
        assert_eq!(o.successes, 0);
    }

    #[test]
    fn clear_resets_and_keeps_capacity() {
        let mut o = SlotOutcome::empty();
        o.delivered.push(DeliveredPacket {
            id: PacketId(1),
            injected_at: 0,
            delivered_at: 3,
            path_len: 1,
        });
        o.attempts = 5;
        o.successes = 2;
        let cap = o.delivered.capacity();
        o.clear();
        assert!(o.delivered.is_empty());
        assert_eq!(o.attempts, 0);
        assert_eq!(o.successes, 0);
        assert_eq!(o.delivered.capacity(), cap);
    }

    /// A legacy protocol implementing only `on_slot`: instantly delivers
    /// every arrival.
    struct LegacySink {
        seen: usize,
    }

    impl Protocol for LegacySink {
        fn on_slot(
            &mut self,
            slot: u64,
            arrivals: Vec<Packet>,
            _phy: &dyn Feasibility,
            _rng: &mut dyn RngCore,
        ) -> SlotOutcome {
            let mut out = SlotOutcome::empty();
            for p in &arrivals {
                out.delivered.push(DeliveredPacket {
                    id: p.id(),
                    injected_at: p.injected_at(),
                    delivered_at: slot,
                    path_len: p.path_len(),
                });
            }
            out.attempts = arrivals.len();
            out.successes = arrivals.len();
            self.seen += arrivals.len();
            out
        }

        fn backlog(&self) -> usize {
            0
        }
    }

    #[test]
    fn step_shim_drives_on_slot_only_protocols_and_clears_stale_state() {
        let mut p = LegacySink { seen: 0 };
        let phy = PerLinkFeasibility::new(1);
        let mut rng = root_rng(1);
        let packet = Packet::new(PacketId(9), RoutePath::single_hop(LinkId(0)).shared(), 4);
        let mut out = SlotOutcome::empty();
        // Pre-dirty the outcome: step must clear it.
        out.attempts = 99;
        out.delivered.push(DeliveredPacket {
            id: PacketId(0),
            injected_at: 0,
            delivered_at: 0,
            path_len: 1,
        });
        p.step(5, std::slice::from_ref(&packet), &phy, &mut rng, &mut out);
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].id, PacketId(9));
        assert_eq!(out.attempts, 1);
        assert_eq!(p.seen, 1);
        // Idle slot leaves a clean outcome.
        p.step(6, &[], &phy, &mut rng, &mut out);
        assert!(out.delivered.is_empty());
        assert_eq!(out.attempts, 0);
    }
}
