//! The slot-level interface every dynamic protocol implements.
//!
//! A protocol is driven one slot at a time: it receives the packets
//! injected in that slot, may issue transmission attempts against the
//! physical layer (a [`crate::feasibility::Feasibility`] oracle), and
//! reports deliveries. The frame protocol of Section 4 implements this, and
//! so do the custom protocols of the lower-bound experiment (Section 8).
//!
//! The driving entry point is [`Protocol::step`]: arrivals are borrowed
//! and the outcome is written into a caller-owned [`SlotOutcome`], so a
//! simulation's slot loop reuses two buffers for its entire run and idle
//! slots allocate nothing. The owned-`Vec` [`Protocol::on_slot`] form is
//! kept as a convenience shim — each method has a default implemented in
//! terms of the other, so implementations override exactly one of them
//! (hot protocols override `step`; overriding neither would recurse).

use crate::feasibility::Feasibility;
use crate::packet::{DeliveredPacket, Packet};
use rand::RngCore;

/// What happened during one slot of a protocol run.
#[derive(Clone, Debug, Default)]
pub struct SlotOutcome {
    /// Packets that reached their final destination this slot.
    pub delivered: Vec<DeliveredPacket>,
    /// Transmission attempts issued this slot.
    pub attempts: usize,
    /// Attempts that succeeded this slot.
    pub successes: usize,
}

impl SlotOutcome {
    /// An outcome with no activity.
    pub fn empty() -> Self {
        SlotOutcome::default()
    }

    /// Resets the outcome to no activity, retaining the delivered
    /// buffer's capacity — the reuse contract of [`Protocol::step`]:
    /// implementations call this first, so callers can hand the same
    /// outcome to every slot without clearing it between calls.
    pub fn clear(&mut self) {
        self.delivered.clear();
        self.attempts = 0;
        self.successes = 0;
    }
}

/// A dynamic packet-scheduling protocol, driven slot by slot.
///
/// Implementations must override [`Protocol::step`] (preferred; the hot
/// path) or [`Protocol::on_slot`] (legacy shim); each has a default
/// delegating to the other.
pub trait Protocol {
    /// Advances the protocol by one slot, writing what happened into
    /// `out`.
    ///
    /// `arrivals` are the packets injected in this slot (already stamped
    /// with their injection time); `phy` decides which of the protocol's
    /// transmission attempts succeed. Implementations must be driven
    /// with consecutive slot numbers starting at 0.
    ///
    /// `out` is reset via [`SlotOutcome::clear`] before anything is
    /// recorded — callers reuse one outcome across slots and read it
    /// between calls; they never need to clear it themselves.
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        let outcome = self.on_slot(slot, arrivals.to_vec(), phy, rng);
        out.clear();
        out.delivered.extend_from_slice(&outcome.delivered);
        out.attempts = outcome.attempts;
        out.successes = outcome.successes;
    }

    /// Advances the protocol by one slot, returning an owned outcome.
    ///
    /// Semantically identical to [`Protocol::step`] — same decisions,
    /// same RNG consumption — kept for call sites that prefer owned
    /// values over buffer reuse. Callers must drive a protocol through
    /// one entry point per slot, not both.
    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome {
        let mut out = SlotOutcome::empty();
        self.step(slot, &arrivals, phy, rng, &mut out);
        out
    }

    /// Number of packets currently in the system (injected, not yet
    /// delivered).
    fn backlog(&self) -> usize;

    /// The potential `Φ`: total remaining hops of all *failed* packets
    /// (Section 4.1). Protocols without a failure notion report zero.
    fn potential(&self) -> u64 {
        0
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn step(
        &mut self,
        slot: u64,
        arrivals: &[Packet],
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
        out: &mut SlotOutcome,
    ) {
        (**self).step(slot, arrivals, phy, rng, out)
    }

    fn on_slot(
        &mut self,
        slot: u64,
        arrivals: Vec<Packet>,
        phy: &dyn Feasibility,
        rng: &mut dyn RngCore,
    ) -> SlotOutcome {
        (**self).on_slot(slot, arrivals, phy, rng)
    }

    fn backlog(&self) -> usize {
        (**self).backlog()
    }

    fn potential(&self) -> u64 {
        (**self).potential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::PerLinkFeasibility;
    use crate::ids::{LinkId, PacketId};
    use crate::path::RoutePath;
    use crate::rng::root_rng;

    #[test]
    fn empty_outcome_has_no_activity() {
        let o = SlotOutcome::empty();
        assert!(o.delivered.is_empty());
        assert_eq!(o.attempts, 0);
        assert_eq!(o.successes, 0);
    }

    #[test]
    fn clear_resets_and_keeps_capacity() {
        let mut o = SlotOutcome::empty();
        o.delivered.push(DeliveredPacket {
            id: PacketId(1),
            injected_at: 0,
            delivered_at: 3,
            path_len: 1,
        });
        o.attempts = 5;
        o.successes = 2;
        let cap = o.delivered.capacity();
        o.clear();
        assert!(o.delivered.is_empty());
        assert_eq!(o.attempts, 0);
        assert_eq!(o.successes, 0);
        assert_eq!(o.delivered.capacity(), cap);
    }

    /// A legacy protocol implementing only `on_slot`: instantly delivers
    /// every arrival.
    struct LegacySink {
        seen: usize,
    }

    impl Protocol for LegacySink {
        fn on_slot(
            &mut self,
            slot: u64,
            arrivals: Vec<Packet>,
            _phy: &dyn Feasibility,
            _rng: &mut dyn RngCore,
        ) -> SlotOutcome {
            let mut out = SlotOutcome::empty();
            for p in &arrivals {
                out.delivered.push(DeliveredPacket {
                    id: p.id(),
                    injected_at: p.injected_at(),
                    delivered_at: slot,
                    path_len: p.path_len(),
                });
            }
            out.attempts = arrivals.len();
            out.successes = arrivals.len();
            self.seen += arrivals.len();
            out
        }

        fn backlog(&self) -> usize {
            0
        }
    }

    #[test]
    fn step_shim_drives_on_slot_only_protocols_and_clears_stale_state() {
        let mut p = LegacySink { seen: 0 };
        let phy = PerLinkFeasibility::new(1);
        let mut rng = root_rng(1);
        let packet = Packet::new(PacketId(9), RoutePath::single_hop(LinkId(0)).shared(), 4);
        let mut out = SlotOutcome::empty();
        // Pre-dirty the outcome: step must clear it.
        out.attempts = 99;
        out.delivered.push(DeliveredPacket {
            id: PacketId(0),
            injected_at: 0,
            delivered_at: 0,
            path_len: 1,
        });
        p.step(5, std::slice::from_ref(&packet), &phy, &mut rng, &mut out);
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.delivered[0].id, PacketId(9));
        assert_eq!(out.attempts, 1);
        assert_eq!(p.seen, 1);
        // Idle slot leaves a clean outcome.
        p.step(6, &[], &phy, &mut rng, &mut out);
        assert!(out.delivered.is_empty());
        assert_eq!(out.attempts, 0);
    }
}
