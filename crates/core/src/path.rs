//! Fixed packet routes (Section 2: paths are fixed at injection time, e.g.
//! by routing tables, may revisit nodes, and have length at most `D`).

use crate::error::ModelError;
use crate::graph::Network;
use crate::ids::LinkId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A fixed route through the network: a non-empty sequence of links where
/// consecutive links share the intermediate node.
///
/// Routes are validated at construction and immutable afterwards; they are
/// typically shared between many packets via [`Arc`], which
/// [`RoutePath::shared`] produces.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RoutePath {
    links: Vec<LinkId>,
}

impl RoutePath {
    /// Creates a route after validating it against `network`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyPath`] if `links` is empty;
    /// * [`ModelError::UnknownLink`] if any link does not exist;
    /// * [`ModelError::DisconnectedPath`] if consecutive links do not share
    ///   the intermediate node;
    /// * [`ModelError::PathTooLong`] if the route exceeds the network's `D`.
    pub fn new(network: &Network, links: Vec<LinkId>) -> Result<Self, ModelError> {
        if links.is_empty() {
            return Err(ModelError::EmptyPath);
        }
        if links.len() > network.max_path_len() {
            return Err(ModelError::PathTooLong {
                len: links.len(),
                max: network.max_path_len(),
            });
        }
        for &link in &links {
            if !network.contains_link(link) {
                return Err(ModelError::UnknownLink(link));
            }
        }
        for (hop, pair) in links.windows(2).enumerate() {
            if !network.adjacent(pair[0], pair[1]) {
                return Err(ModelError::DisconnectedPath {
                    hop,
                    prev: pair[0],
                    next: pair[1],
                });
            }
        }
        Ok(RoutePath { links })
    }

    /// Creates a single-hop route without network validation.
    ///
    /// Useful for substrates (MAC, static single-hop instances) where the
    /// link set *is* the request set and no multi-hop structure exists.
    pub fn single_hop(link: LinkId) -> Self {
        RoutePath { links: vec![link] }
    }

    /// Creates a route from raw links without validation.
    ///
    /// Intended for tests and generators that construct paths which are
    /// correct by construction; prefer [`RoutePath::new`] elsewhere.
    pub fn from_links_unchecked(links: Vec<LinkId>) -> Self {
        assert!(!links.is_empty(), "route path must not be empty");
        RoutePath { links }
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Always false: routes have at least one hop.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The link crossed at hop `hop` (0-based).
    pub fn hop(&self, hop: usize) -> Option<LinkId> {
        self.links.get(hop).copied()
    }

    /// All links of the route in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Whether the route uses `link` at any hop.
    pub fn uses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Wraps the route in an [`Arc`] for cheap sharing between packets.
    pub fn shared(self) -> Arc<RoutePath> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{line_network, NetworkBuilder};

    #[test]
    fn accepts_connected_path() {
        let net = line_network(3);
        let path = RoutePath::new(&net, vec![LinkId(0), LinkId(1), LinkId(2)]).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path.hop(1), Some(LinkId(1)));
        assert_eq!(path.hop(3), None);
        assert!(path.uses(LinkId(2)));
        assert!(!path.is_empty());
    }

    #[test]
    fn rejects_empty_path() {
        let net = line_network(1);
        assert_eq!(RoutePath::new(&net, vec![]), Err(ModelError::EmptyPath));
    }

    #[test]
    fn rejects_disconnected_path() {
        let net = line_network(3);
        let err = RoutePath::new(&net, vec![LinkId(0), LinkId(2)]).unwrap_err();
        assert_eq!(
            err,
            ModelError::DisconnectedPath {
                hop: 0,
                prev: LinkId(0),
                next: LinkId(2),
            }
        );
    }

    #[test]
    fn rejects_unknown_link() {
        let net = line_network(2);
        let err = RoutePath::new(&net, vec![LinkId(9)]).unwrap_err();
        assert_eq!(err, ModelError::UnknownLink(LinkId(9)));
    }

    #[test]
    fn rejects_too_long_path() {
        // A 2-cycle with D = 3: going around twice needs 4 hops.
        let mut b = NetworkBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        let uv = b.add_link(u, v);
        let vu = b.add_link(v, u);
        let net = b.max_path_len(3).build();
        // Length 3 revisits a node, which the paper explicitly permits.
        assert!(RoutePath::new(&net, vec![uv, vu, uv]).is_ok());
        let err = RoutePath::new(&net, vec![uv, vu, uv, vu]).unwrap_err();
        assert_eq!(err, ModelError::PathTooLong { len: 4, max: 3 });
    }

    #[test]
    fn single_hop_helper() {
        let path = RoutePath::single_hop(LinkId(5));
        assert_eq!(path.len(), 1);
        assert_eq!(path.hop(0), Some(LinkId(5)));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn unchecked_still_rejects_empty() {
        RoutePath::from_links_unchecked(vec![]);
    }
}
