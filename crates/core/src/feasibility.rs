//! Physical-layer feasibility: which simultaneous transmission attempts
//! succeed.
//!
//! The dynamic protocol and all static algorithms are acknowledgment-based:
//! they only learn whether their own transmissions succeeded. A
//! [`Feasibility`] oracle is the ground truth deciding that, and it is kept
//! separate from the [`crate::interference::InterferenceModel`] used to
//! *design* schedules — substrates like SINR check the exact accumulated
//! interference of the attempts actually made, not the pairwise abstraction.
//!
//! This module provides generic oracles:
//!
//! * [`PerLinkFeasibility`] — an attempt succeeds iff it is alone on its link
//!   (packet-routing semantics: one packet per link per slot);
//! * [`SingleChannelFeasibility`] — exactly one attempt system-wide succeeds
//!   (the multiple-access channel);
//! * [`ThresholdFeasibility`] — an attempt succeeds iff the summed
//!   interference weight from all other attempts stays below a threshold
//!   (the generic "accumulative" physical layer matching a linear measure);
//! * [`LossyFeasibility`] — failure injection: drops successes with a fixed
//!   probability, the "unreliable network" extension sketched in Section 9.

use crate::ids::{LinkId, PacketId};
use crate::interference::InterferenceModel;
use rand::RngCore;

/// A transmission attempt: one packet trying to cross one link in the
/// current slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Attempt {
    /// The link to transmit on.
    pub link: LinkId,
    /// The packet being transmitted.
    pub packet: PacketId,
}

/// Decides which of a slot's simultaneous attempts succeed.
///
/// Implementations must be deterministic given the same attempts and RNG
/// state. The returned vector is index-aligned with `attempts`.
pub trait Feasibility {
    /// Returns, for each attempt, whether it succeeded.
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool>;

    /// Writes the per-attempt success flags into `out` (cleared first).
    ///
    /// Semantically identical to [`Feasibility::successes`] — same flags,
    /// same RNG consumption — but lets hot loops (the frame protocol's
    /// slot loop) reuse one buffer instead of allocating a `Vec` per
    /// slot. The default delegates to `successes`; allocation-sensitive
    /// oracles override it.
    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, rng: &mut dyn RngCore) {
        *out = self.successes(attempts, rng);
    }
}

impl<F: Feasibility + ?Sized> Feasibility for &F {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        (**self).successes(attempts, rng)
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, rng: &mut dyn RngCore) {
        (**self).successes_into(attempts, out, rng)
    }
}

impl<F: Feasibility + ?Sized> Feasibility for Box<F> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        (**self).successes(attempts, rng)
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, rng: &mut dyn RngCore) {
        (**self).successes_into(attempts, out, rng)
    }
}

impl<F: Feasibility + ?Sized> Feasibility for std::sync::Arc<F> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        (**self).successes(attempts, rng)
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, rng: &mut dyn RngCore) {
        (**self).successes_into(attempts, out, rng)
    }
}

/// Marks as failed every attempt that shares its link with another attempt;
/// returns the per-link multiplicity for further checks.
fn link_multiplicities(attempts: &[Attempt], num_links: usize) -> Vec<u32> {
    let mut mult = vec![0u32; num_links];
    for a in attempts {
        mult[a.link.index()] += 1;
    }
    mult
}

/// One packet per link per slot; links never interfere.
///
/// This is the physical layer of a wireline packet-routing network
/// (`W = identity`).
#[derive(Clone, Copy, Debug)]
pub struct PerLinkFeasibility {
    num_links: usize,
}

impl PerLinkFeasibility {
    /// Creates the oracle over `num_links` links.
    pub fn new(num_links: usize) -> Self {
        PerLinkFeasibility { num_links }
    }
}

thread_local! {
    /// Per-thread scratch of attempted-link ids for
    /// [`PerLinkFeasibility::successes_into`]: keeps the slot check
    /// allocation-free in steady state without an `O(m)` array.
    static LINK_SCRATCH: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl Feasibility for PerLinkFeasibility {
    fn successes(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
        let mult = link_multiplicities(attempts, self.num_links);
        attempts.iter().map(|a| mult[a.link.index()] == 1).collect()
    }

    // Allocation-free variant: sort the k attempted link ids and check
    // each attempt's neighbourhood — O(k log k) per slot, independent of
    // the network size m and without the O(m) zeroed multiplicity array.
    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, _rng: &mut dyn RngCore) {
        out.clear();
        LINK_SCRATCH.with(|scratch| {
            let links = &mut *scratch.borrow_mut();
            links.clear();
            links.extend(attempts.iter().map(|a| a.link.0));
            links.sort_unstable();
            out.extend(attempts.iter().map(|a| {
                // First sorted slot holding this link; it is alone iff the
                // next slot holds a different link.
                let first = links.partition_point(|&l| l < a.link.0);
                links.get(first + 1) != Some(&a.link.0)
            }));
        });
    }
}

/// The multiple-access channel: a slot is useful iff exactly one attempt is
/// made anywhere in the system.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleChannelFeasibility;

impl SingleChannelFeasibility {
    /// Creates the oracle.
    pub fn new() -> Self {
        SingleChannelFeasibility
    }
}

impl Feasibility for SingleChannelFeasibility {
    fn successes(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
        let alone = attempts.len() == 1;
        attempts.iter().map(|_| alone).collect()
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, _rng: &mut dyn RngCore) {
        out.clear();
        out.resize(attempts.len(), attempts.len() == 1);
    }
}

/// Accumulative interference: an attempt on `e` succeeds iff no other packet
/// shares `e` and `Σ_{e' attempting} W[e][e']·(multiplicity) < threshold`.
///
/// With `W` an affectance matrix and threshold 1 this is exactly the SINR
/// success criterion; with a 0/1 conflict matrix and threshold 1 it is
/// independent-set feasibility.
#[derive(Clone, Debug)]
pub struct ThresholdFeasibility<M> {
    model: M,
    threshold: f64,
}

impl<M: InterferenceModel> ThresholdFeasibility<M> {
    /// Creates the oracle with the standard threshold 1.
    pub fn new(model: M) -> Self {
        Self::with_threshold(model, 1.0)
    }

    /// Creates the oracle with a custom interference budget.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn with_threshold(model: M, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be positive and finite, got {threshold}"
        );
        ThresholdFeasibility { model, threshold }
    }

    /// The wrapped interference model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: InterferenceModel> Feasibility for ThresholdFeasibility<M> {
    fn successes(&self, attempts: &[Attempt], _rng: &mut dyn RngCore) -> Vec<bool> {
        let mult = link_multiplicities(attempts, self.model.num_links());
        // Distinct links transmitting this slot, with multiplicities.
        let active: Vec<(LinkId, u32)> = {
            let mut links: Vec<LinkId> = attempts.iter().map(|a| a.link).collect();
            links.sort_unstable();
            links.dedup();
            links.into_iter().map(|l| (l, mult[l.index()])).collect()
        };
        attempts
            .iter()
            .map(|a| {
                if mult[a.link.index()] != 1 {
                    return false; // collision on the link itself
                }
                let interference: f64 = active
                    .iter()
                    .filter(|(l, _)| *l != a.link)
                    .map(|(l, count)| self.model.weight(a.link, *l) * f64::from(*count))
                    .sum();
                interference < self.threshold
            })
            .collect()
    }
}

/// Failure injection: wraps another oracle and drops each success with
/// probability `loss`.
///
/// Models the "each transmission is lost with some probability even if
/// interference is small enough" extension from the paper's discussion
/// section; stability tests use it to confirm the protocol tolerates it at
/// proportionally reduced rate.
#[derive(Clone, Debug)]
pub struct LossyFeasibility<F> {
    inner: F,
    loss: f64,
}

impl<F: Feasibility> LossyFeasibility<F> {
    /// Wraps `inner`, dropping each success independently with probability
    /// `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)`.
    pub fn new(inner: F, loss: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss),
            "loss probability must be in [0, 1), got {loss}"
        );
        LossyFeasibility { inner, loss }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Feasibility> Feasibility for LossyFeasibility<F> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        let mut successes = Vec::new();
        self.successes_into(attempts, &mut successes, rng);
        successes
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, rng: &mut dyn RngCore) {
        use rand::Rng;
        self.inner.successes_into(attempts, out, rng);
        for s in out.iter_mut() {
            if *s && rng.gen::<f64>() < self.loss {
                *s = false;
            }
        }
    }
}

/// Failure injection with temporal structure: a periodic jammer that
/// blocks a set of links (or the whole network) for the first
/// `burst_len` slots of every `period`-slot cycle.
///
/// Models the adversarial-jamming setting the paper's discussion section
/// points to ([7, 38]): the protocol cannot distinguish jamming from
/// interference, so a stable protocol must absorb the jammed slots at
/// correspondingly reduced rate. The wrapper counts slots internally —
/// one [`Feasibility::successes`] call per slot, which is the oracle
/// contract throughout this workspace.
#[derive(Debug)]
pub struct JammedFeasibility<F> {
    inner: F,
    period: u64,
    burst_len: u64,
    /// Links the jammer targets; `None` means every link.
    targets: Option<Vec<LinkId>>,
    slot: std::sync::atomic::AtomicU64,
}

impl<F: Feasibility> JammedFeasibility<F> {
    /// Wraps `inner` with a jammer blocking all links during the first
    /// `burst_len` slots of every `period`-slot cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < burst_len < period`.
    pub fn new(inner: F, period: u64, burst_len: u64) -> Self {
        assert!(
            burst_len > 0 && burst_len < period,
            "need 0 < burst_len < period, got {burst_len}/{period}"
        );
        JammedFeasibility {
            inner,
            period,
            burst_len,
            targets: None,
            slot: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Restricts the jammer to the given links.
    pub fn with_targets(mut self, targets: Vec<LinkId>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Fraction of slots the jammer blocks.
    pub fn duty_cycle(&self) -> f64 {
        self.burst_len as f64 / self.period as f64
    }

    fn is_jammed(&self, slot: u64, link: LinkId) -> bool {
        if slot % self.period >= self.burst_len {
            return false;
        }
        match &self.targets {
            None => true,
            Some(targets) => targets.contains(&link),
        }
    }
}

impl<F: Feasibility> Feasibility for JammedFeasibility<F> {
    fn successes(&self, attempts: &[Attempt], rng: &mut dyn RngCore) -> Vec<bool> {
        let mut successes = Vec::new();
        self.successes_into(attempts, &mut successes, rng);
        successes
    }

    fn successes_into(&self, attempts: &[Attempt], out: &mut Vec<bool>, rng: &mut dyn RngCore) {
        let slot = self.slot.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.successes_into(attempts, out, rng);
        for (s, a) in out.iter_mut().zip(attempts) {
            if *s && self.is_jammed(slot, a.link) {
                *s = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{DenseInterference, IdentityInterference};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    fn attempt(link: u32, packet: u64) -> Attempt {
        Attempt {
            link: LinkId(link),
            packet: PacketId(packet),
        }
    }

    #[test]
    fn per_link_allows_parallel_distinct_links() {
        let oracle = PerLinkFeasibility::new(3);
        let out = oracle.successes(&[attempt(0, 1), attempt(1, 2)], &mut rng());
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn per_link_fails_same_link_collision() {
        let oracle = PerLinkFeasibility::new(3);
        let out = oracle.successes(&[attempt(0, 1), attempt(0, 2), attempt(1, 3)], &mut rng());
        assert_eq!(out, vec![false, false, true]);
    }

    #[test]
    fn per_link_successes_into_matches_successes() {
        let oracle = PerLinkFeasibility::new(5);
        let cases: Vec<Vec<Attempt>> = vec![
            vec![],
            vec![attempt(0, 1)],
            vec![attempt(0, 1), attempt(1, 2)],
            vec![attempt(0, 1), attempt(0, 2), attempt(1, 3)],
            vec![attempt(4, 1), attempt(4, 2), attempt(4, 3)],
            vec![attempt(3, 1), attempt(1, 2), attempt(3, 3), attempt(0, 4)],
        ];
        let mut out = Vec::new();
        for attempts in cases {
            oracle.successes_into(&attempts, &mut out, &mut rng());
            assert_eq!(out, oracle.successes(&attempts, &mut rng()), "{attempts:?}");
        }
    }

    #[test]
    fn single_channel_requires_exactly_one() {
        let oracle = SingleChannelFeasibility::new();
        assert_eq!(oracle.successes(&[attempt(0, 1)], &mut rng()), vec![true]);
        assert_eq!(
            oracle.successes(&[attempt(0, 1), attempt(1, 2)], &mut rng()),
            vec![false, false]
        );
        assert_eq!(oracle.successes(&[], &mut rng()), Vec::<bool>::new());
    }

    #[test]
    fn threshold_accumulates_interference() {
        // Three links; 0 is disturbed 0.6 by each of 1 and 2.
        let model = DenseInterference::from_rows(
            3,
            vec![
                1.0, 0.6, 0.6, //
                0.0, 1.0, 0.0, //
                0.0, 0.0, 1.0,
            ],
        )
        .unwrap();
        let oracle = ThresholdFeasibility::new(model);
        // One interferer: 0.6 < 1, link 0 succeeds.
        let out = oracle.successes(&[attempt(0, 1), attempt(1, 2)], &mut rng());
        assert_eq!(out, vec![true, true]);
        // Two interferers: 1.2 >= 1, link 0 fails but 1 and 2 are clean.
        let out = oracle.successes(&[attempt(0, 1), attempt(1, 2), attempt(2, 3)], &mut rng());
        assert_eq!(out, vec![false, true, true]);
    }

    #[test]
    fn threshold_same_link_collision_fails_both() {
        let oracle = ThresholdFeasibility::new(IdentityInterference::new(2));
        let out = oracle.successes(&[attempt(0, 1), attempt(0, 2)], &mut rng());
        assert_eq!(out, vec![false, false]);
    }

    #[test]
    fn threshold_identity_is_per_link() {
        let oracle = ThresholdFeasibility::new(IdentityInterference::new(4));
        let attempts = [attempt(0, 1), attempt(1, 2), attempt(2, 3)];
        assert_eq!(
            oracle.successes(&attempts, &mut rng()),
            vec![true, true, true]
        );
    }

    #[test]
    fn lossy_zero_is_transparent() {
        let oracle = LossyFeasibility::new(PerLinkFeasibility::new(2), 0.0);
        let out = oracle.successes(&[attempt(0, 1)], &mut rng());
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn lossy_drops_roughly_expected_fraction() {
        let oracle = LossyFeasibility::new(PerLinkFeasibility::new(1), 0.5);
        let mut r = rng();
        let mut kept = 0;
        let trials = 2000;
        for _ in 0..trials {
            if oracle.successes(&[attempt(0, 1)], &mut r)[0] {
                kept += 1;
            }
        }
        // Binomial(2000, 0.5): stays within ±5 sigma of 1000 essentially always.
        assert!((880..=1120).contains(&kept), "kept {kept} of {trials}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn lossy_rejects_certain_loss() {
        let _ = LossyFeasibility::new(SingleChannelFeasibility::new(), 1.0);
    }

    #[test]
    fn jammer_blocks_burst_slots_only() {
        // Period 4, burst 2: slots 0, 1 jammed; 2, 3 clean.
        let oracle = JammedFeasibility::new(PerLinkFeasibility::new(2), 4, 2);
        let mut r = rng();
        let atts = [attempt(0, 1)];
        let pattern: Vec<bool> = (0..8).map(|_| oracle.successes(&atts, &mut r)[0]).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, true, false, false, true, true]
        );
        assert_eq!(oracle.duty_cycle(), 0.5);
    }

    #[test]
    fn targeted_jammer_spares_other_links() {
        let oracle =
            JammedFeasibility::new(PerLinkFeasibility::new(2), 4, 2).with_targets(vec![LinkId(0)]);
        let mut r = rng();
        // Slot 0 (jammed window): link 0 blocked, link 1 fine.
        let out = oracle.successes(&[attempt(0, 1), attempt(1, 2)], &mut r);
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "burst_len")]
    fn jammer_rejects_full_duty_cycle() {
        let _ = JammedFeasibility::new(SingleChannelFeasibility::new(), 4, 4);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_rejects_nonpositive() {
        let _ = ThresholdFeasibility::with_threshold(IdentityInterference::new(1), 0.0);
    }
}
