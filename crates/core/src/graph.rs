//! The wireless network as a directed graph (Section 2 of the paper).
//!
//! Vertices are network nodes; directed edges are the possible communication
//! links. Packets travel along fixed routes of at most `D` hops, and the
//! *significant network size* is `m = max{|E|, D}` — the quantity every
//! competitive ratio in the paper is expressed in.

use crate::ids::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// A directed communication link between two nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

/// An immutable directed network `G = (V, E)` with a declared maximum route
/// length `D`.
///
/// Construct with [`NetworkBuilder`]. The network itself carries no
/// interference information — that lives in a
/// [`crate::interference::InterferenceModel`] chosen per substrate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    links: Vec<Link>,
    num_nodes: u32,
    max_path_len: usize,
    outgoing: Vec<Vec<LinkId>>,
    incoming: Vec<Vec<LinkId>>,
}

impl Network {
    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of directed links `|E|`.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The declared maximum route length `D`.
    pub fn max_path_len(&self) -> usize {
        self.max_path_len
    }

    /// The significant network size `m = max{|E|, D}` (Section 2).
    pub fn significant_size(&self) -> usize {
        self.links.len().max(self.max_path_len)
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`Network::get_link`] for a
    /// fallible lookup.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// The link with the given id, or `None` if it does not exist.
    pub fn get_link(&self, id: LinkId) -> Option<Link> {
        self.links.get(id.index()).copied()
    }

    /// Whether `id` refers to an existing node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.0 < self.num_nodes
    }

    /// Whether `id` refers to an existing link.
    pub fn contains_link(&self, id: LinkId) -> bool {
        id.index() < self.links.len()
    }

    /// Iterator over all link ids in index order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Iterator over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Links leaving `node`.
    pub fn outgoing(&self, node: NodeId) -> &[LinkId] {
        &self.outgoing[node.index()]
    }

    /// Links entering `node`.
    pub fn incoming(&self, node: NodeId) -> &[LinkId] {
        &self.incoming[node.index()]
    }

    /// Whether `next` can directly follow `prev` on a route, i.e. `prev`'s
    /// target is `next`'s source.
    pub fn adjacent(&self, prev: LinkId, next: LinkId) -> bool {
        self.links[prev.index()].dst == self.links[next.index()].src
    }
}

/// Incremental builder for a [`Network`].
///
/// ```
/// use dps_core::graph::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new();
/// let u = b.add_node();
/// let v = b.add_node();
/// let e = b.add_link(u, v);
/// let net = b.max_path_len(1).build();
/// assert_eq!(net.num_links(), 1);
/// assert_eq!(net.link(e).src, u);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    links: Vec<Link>,
    num_nodes: u32,
    max_path_len: Option<usize>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Adds `count` nodes and returns their ids.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Adds a directed link from `src` to `dst` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint has not been added to the builder.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId) -> LinkId {
        assert!(src.0 < self.num_nodes, "source node {src} not in builder");
        assert!(dst.0 < self.num_nodes, "target node {dst} not in builder");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { src, dst });
        id
    }

    /// Declares the maximum route length `D`. Defaults to `|E|` if unset.
    pub fn max_path_len(&mut self, d: usize) -> &mut Self {
        self.max_path_len = Some(d);
        self
    }

    /// Finalizes the network.
    pub fn build(&self) -> Network {
        let max_path_len = self.max_path_len.unwrap_or(self.links.len()).max(1);
        let mut outgoing = vec![Vec::new(); self.num_nodes as usize];
        let mut incoming = vec![Vec::new(); self.num_nodes as usize];
        for (i, link) in self.links.iter().enumerate() {
            outgoing[link.src.index()].push(LinkId(i as u32));
            incoming[link.dst.index()].push(LinkId(i as u32));
        }
        Network {
            links: self.links.clone(),
            num_nodes: self.num_nodes,
            max_path_len,
            outgoing,
            incoming,
        }
    }
}

/// Builds a directed line network `v0 → v1 → … → v_n` with `n` links, a
/// common workload shape in the latency experiments (E3).
pub fn line_network(num_links: usize) -> Network {
    let mut b = NetworkBuilder::new();
    let nodes = b.add_nodes(num_links + 1);
    for i in 0..num_links {
        b.add_link(nodes[i], nodes[i + 1]);
    }
    b.max_path_len(num_links.max(1)).build()
}

/// Builds a directed ring network with `n` nodes and `n` links.
pub fn ring_network(num_nodes: usize) -> Network {
    assert!(num_nodes >= 2, "a ring needs at least two nodes");
    let mut b = NetworkBuilder::new();
    let nodes = b.add_nodes(num_nodes);
    for i in 0..num_nodes {
        b.add_link(nodes[i], nodes[(i + 1) % num_nodes]);
    }
    b.max_path_len(num_nodes).build()
}

/// Builds a `rows × cols` directed grid with rightward and downward links.
pub fn grid_network(rows: usize, cols: usize) -> Network {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let mut b = NetworkBuilder::new();
    let nodes = b.add_nodes(rows * cols);
    let at = |r: usize, c: usize| nodes[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_link(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_link(at(r, c), at(r + 1, c));
            }
        }
    }
    b.max_path_len(rows + cols).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = NetworkBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        let w = b.add_node();
        assert_eq!((u, v, w), (NodeId(0), NodeId(1), NodeId(2)));
        let e0 = b.add_link(u, v);
        let e1 = b.add_link(v, w);
        assert_eq!((e0, e1), (LinkId(0), LinkId(1)));
    }

    #[test]
    fn significant_size_is_max_of_links_and_d() {
        let mut b = NetworkBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        b.add_link(u, v);
        let net_small_d = b.clone().max_path_len(1).build();
        assert_eq!(net_small_d.significant_size(), 1);
        let net_large_d = b.max_path_len(10).build();
        assert_eq!(net_large_d.significant_size(), 10);
    }

    #[test]
    fn adjacency_lists_are_consistent() {
        let net = line_network(3);
        assert_eq!(net.outgoing(NodeId(0)), &[LinkId(0)]);
        assert_eq!(net.incoming(NodeId(1)), &[LinkId(0)]);
        assert_eq!(net.outgoing(NodeId(3)), &[] as &[LinkId]);
        assert!(net.adjacent(LinkId(0), LinkId(1)));
        assert!(!net.adjacent(LinkId(1), LinkId(0)));
    }

    #[test]
    fn ring_wraps_around() {
        let net = ring_network(4);
        assert_eq!(net.num_links(), 4);
        assert_eq!(net.link(LinkId(3)).dst, NodeId(0));
        assert!(net.adjacent(LinkId(3), LinkId(0)));
    }

    #[test]
    fn grid_has_expected_link_count() {
        // 3x3 grid: 2 rightward links per row * 3 rows + 2 downward per col * 3 cols.
        let net = grid_network(3, 3);
        assert_eq!(net.num_nodes(), 9);
        assert_eq!(net.num_links(), 12);
    }

    #[test]
    fn get_link_is_fallible() {
        let net = line_network(1);
        assert!(net.get_link(LinkId(0)).is_some());
        assert!(net.get_link(LinkId(1)).is_none());
        assert!(net.contains_link(LinkId(0)));
        assert!(!net.contains_link(LinkId(1)));
    }

    #[test]
    #[should_panic(expected = "not in builder")]
    fn add_link_rejects_unknown_nodes() {
        let mut b = NetworkBuilder::new();
        let u = b.add_node();
        b.add_link(u, NodeId(99));
    }

    #[test]
    fn default_max_path_len_is_link_count() {
        let net = line_network(5);
        assert_eq!(net.max_path_len(), 5);
    }
}
