//! Deterministic random-stream management.
//!
//! Every randomized component in this workspace takes an explicit RNG so
//! experiments are exactly reproducible. [`split_stream`] derives
//! statistically independent child streams from a root seed, so parameter
//! sweeps can run repetitions in parallel without sharing RNG state.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG used throughout the workspace: ChaCha with 12 rounds — fast,
/// portable across platforms and `rand` versions, and seedable per stream.
pub type DeterministicRng = ChaCha12Rng;

/// Creates the root RNG for a run.
pub fn root_rng(seed: u64) -> DeterministicRng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives an independent child stream from `(seed, stream)`.
///
/// ChaCha exposes 2⁶⁴ independent streams per seed; mapping experiment
/// repetition indices to streams keeps repetitions independent and
/// individually reproducible.
pub fn split_stream(seed: u64, stream: u64) -> DeterministicRng {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    rng.set_stream(stream);
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = root_rng(42);
        let mut b = root_rng(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = split_stream(42, 0);
        let mut b = split_stream(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = split_stream(7, 3);
        let mut b = split_stream(7, 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
